// Package serve exercises locksafe's blocking rule, which is active
// because the import path contains a "serve" element.
package serve

import (
	"sync"
	"time"
)

type registry struct {
	mu sync.Mutex
	n  int
}

// holdAcrossSend publishes while holding the lock: one slow reader
// stalls every other caller of the registry.
func holdAcrossSend(r *registry, out chan int) {
	r.mu.Lock()
	out <- r.n // want `r.mu is held across a blocking channel send`
	r.mu.Unlock()
}

// holdAcrossSleep parks with the lock held.
func holdAcrossSleep(r *registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	time.Sleep(time.Millisecond) // want `r.mu is held across a blocking call to time.Sleep`
}

// holdAcrossReceive blocks on a channel read under the lock.
func holdAcrossReceive(r *registry, in chan int) {
	r.mu.Lock()
	r.n = <-in // want `r.mu is held across a blocking channel receive`
	r.mu.Unlock()
}

// Negative: snapshot under the lock, release, then block.
func releaseThenSend(r *registry, out chan int) {
	r.mu.Lock()
	n := r.n
	r.mu.Unlock()
	out <- n
}

// Negative (near miss): a select with a default clause never blocks,
// so holding the lock across it is fine.
func tryNotify(r *registry, out chan int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case out <- r.n:
	default:
	}
}
