// Package locks exercises the locksafe analyzer's copy and return-path
// rules. It has no serve/dist path element, so the blocking rule is
// off here (see the serve fixture package for it).
package locks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// byValue takes the mutex itself: the callee locks a copy.
func byValue(mu sync.Mutex) { // want `sync.Mutex passed by value`
	mu.Lock()
	mu.Unlock()
}

// copyOut duplicates the mutex into a local.
func copyOut(g *guarded) {
	mu := g.mu // want `assignment copies a sync.Mutex`
	mu.Lock()
	mu.Unlock()
}

// leaky releases only on the fall-through path: the early return leaves
// the lock held.
func leaky(g *guarded) int {
	g.mu.Lock() // want `g.mu.Lock\(\) is not released on every return path`
	if g.n > 0 {
		return g.n
	}
	g.mu.Unlock()
	return 0
}

// Negative: a pointer parameter is the correct form.
func byPointer(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

// Negative: defer covers every return path at once.
func deferred(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n > 0 {
		return g.n
	}
	return 0
}

// Negative (near miss): both branches balance their own Unlock, so no
// path leaks even without defer.
func balanced(g *guarded, early bool) int {
	g.mu.Lock()
	if early {
		g.mu.Unlock()
		return 1
	}
	g.mu.Unlock()
	return 0
}

// Negative: constructing a zero mutex is not copying one.
func fresh() *guarded {
	g := &guarded{mu: sync.Mutex{}}
	return g
}
