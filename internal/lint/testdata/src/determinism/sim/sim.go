// Package sim is the determinism fixture: simulation code must not
// read wall-clock time or draw from the global math/rand source. This
// file is the self-test stand-in for the acceptance scenario of a
// stray time.Now() appearing in internal/exec.
package sim

import (
	"math/rand"
	"time"
)

// step is the positive fixture: both wall-clock reads and a global
// rand draw.
func step() time.Duration {
	start := time.Now()                // want `wall-clock time\.Now in simulation code`
	_ = rand.Intn(10)                  // want `global math/rand\.Intn draws from the shared unseeded source`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle`
	return time.Since(start)           // want `wall-clock time\.Since in simulation code`
}

// seeded is the negative fixture: a seeded *rand.Rand is the sanctioned
// pattern, and its methods are not global draws.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// timers is negative: constructing durations and timers is not reading
// the clock.
func timers() time.Duration {
	return 5 * time.Millisecond
}

// progress is negative: an allow annotation with a reason suppresses
// the finding, exactly as the metrics progress display does.
func progress() time.Time {
	//lint:allow determinism: host-side progress display, never feeds simulated quantities
	return time.Now()
}
