// Package ctxpkg is the ctxfirst fixture: exported functions taking a
// context.Context take it first, and structs never store one.
package ctxpkg

import "context"

// Good takes the context first: negative.
func Good(ctx context.Context, n int) int { return n }

// Bad buries the context: positive.
func Bad(n int, ctx context.Context) int { return n } // want `exported Bad takes context\.Context as parameter 2; context goes first`

// internal is unexported; the convention is enforced on the exported
// surface only.
func internal(n int, ctx context.Context) int { return n }

// holder stores a context: positive.
type holder struct {
	ctx context.Context // want `struct holder stores a context\.Context`
	n   int
}

// carrier passes contexts properly: negative.
type carrier struct {
	n int
}

// Run is negative: context first among several parameters.
func Run(ctx context.Context, c carrier, opts ...int) error {
	_ = ctx
	return nil
}
