// Package experiment is the ctxfirst exemption fixture: the real
// experiment.Options is the one sanctioned context carrier (it threads
// sweep cancellation from the CLI signal handler into the worker
// pool); every other struct in the package is still checked.
package experiment

import "context"

// Options mirrors experiment.Options: negative, the sanctioned
// carrier.
type Options struct {
	Ctx   context.Context
	Steps int
}

// worker is positive even inside the experiment package: only Options
// is exempt.
type worker struct {
	ctx context.Context // want `struct worker stores a context\.Context`
}
