// Package trace is the tracekinds fixture: a miniature of the real
// trace package. Every Kind constant must be registered in Kinds(),
// handled by explicit cases in Event.String and WriteChrome, and
// documented (backticked) in docs/TRACING.md next to this fixture's
// root. Each bad constant below violates exactly one surface.
package trace

import "fmt"

// Kind classifies trace events.
type Kind string

const (
	// KGood satisfies every surface: the all-negative fixture.
	KGood Kind = "good"
	// KUnregistered is handled and documented but missing from Kinds().
	KUnregistered Kind = "unregistered" // want `trace kind KUnregistered \("unregistered"\) is not listed in Kinds\(\)`
	// KUnstrung is registered and documented but falls through
	// Event.String's default.
	KUnstrung Kind = "unstrung" // want `trace kind KUnstrung is not handled by an explicit case in Event\.String`
	// KUncharted is registered and rendered but invisible to the Chrome
	// exporter.
	KUncharted Kind = "uncharted" // want `trace kind KUncharted is not handled by an explicit case in WriteChrome`
	// KUndocumented is wired everywhere but absent from docs/TRACING.md.
	KUndocumented Kind = "undocumented" // want `trace kind KUndocumented \("undocumented"\) is not documented in docs/TRACING\.md`
)

// Kinds returns the schema registry.
func Kinds() []Kind {
	return []Kind{KGood, KUnstrung, KUncharted, KUndocumented}
}

// Export format names.
const FormatText = "text"

// Formats lists the export formats.
func Formats() []string {
	return []string{
		FormatText,
		"weird", // want `export format "weird" is not documented in docs/TRACING\.md`
	}
}

// Event is one trace record.
type Event struct {
	Kind Kind
}

// String renders the event.
func (e Event) String() string {
	switch e.Kind {
	case KGood, KUnregistered, KUncharted:
		return string(e.Kind)
	case KUndocumented:
		return "undocumented!"
	default:
		return fmt.Sprintf("?%s", string(e.Kind))
	}
}

// WriteChrome exports events.
func WriteChrome(events []Event) int {
	n := 0
	for _, e := range events {
		switch e.Kind {
		case KGood, KUnregistered, KUnstrung, KUndocumented:
			n++
		}
	}
	return n
}
