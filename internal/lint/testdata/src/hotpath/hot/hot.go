// Package hot is the hotpath fixture: map allocations inside functions
// carrying the //perf:hot directive are flagged; the same code in an
// unannotated function, or map reads/writes without allocation, are
// not.
package hot

// lookup resolves ids through a scratch table.
//
//perf:hot
func lookup(ids []int) map[int]bool {
	seen := make(map[int]bool, len(ids)) // want `make\(map\) in //perf:hot function lookup`
	for _, id := range ids {
		seen[id] = true
	}
	return seen
}

// tally builds a literal on the hot path.
//
//perf:hot
func tally(n int) map[string]int {
	m := map[string]int{"hits": n} // want `map literal in //perf:hot function tally`
	return m
}

// closureAlloc allocates inside a closure declared in a hot function —
// still the hot loop's body.
//
//perf:hot
func closureAlloc(ids []int) int {
	f := func() map[int]int {
		return make(map[int]int) // want `make\(map\) in //perf:hot function closureAlloc`
	}
	return len(f())
}

// useOnly is hot but only reads and writes an existing map: no
// allocation, not flagged.
//
//perf:hot
func useOnly(m map[int]int, k int) int {
	m[k]++
	return m[k]
}

// denseScratch is the sanctioned replacement shape: a slice keyed by
// id, grown once.
//
//perf:hot
func denseScratch(ids []int, n int) []bool {
	seen := make([]bool, n)
	for _, id := range ids {
		seen[id] = true
	}
	return seen
}

// coldAlloc allocates a map but carries no directive: building a map in
// setup or reporting code is fine.
func coldAlloc(ids []int) map[int]bool {
	seen := make(map[int]bool)
	for _, id := range ids {
		seen[id] = true
	}
	return seen
}

// allowed is hot and allocates, but the site is suppressed with a
// justification — the escape hatch works as for every check.
//
//perf:hot
func allowed(n int) map[int]int {
	//lint:allow hotpath: small bounded map built once per reconfigure
	return make(map[int]int, n)
}
