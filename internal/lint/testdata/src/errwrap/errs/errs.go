// Package errs is the errwrap fixture: typed sentinel errors are
// wrapped with %w and matched via errors.Is/As — never compared with
// == / != or string-matched.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

// ErrOOM is a sentinel, like exec.ErrOOM.
var ErrOOM = errors.New("out of fast memory")

// errInternal is unexported and not a sentinel; comparisons against it
// are out of scope.
var errInternal = errors.New("internal")

func compare(err error) bool {
	if err == ErrOOM { // want `ErrOOM compared with ==`
		return true
	}
	if err != ErrOOM { // want `ErrOOM compared with !=`
		return false
	}
	return false
}

func negatives(err error) bool {
	if errors.Is(err, ErrOOM) { // negative: the sanctioned match
		return true
	}
	if err == nil { // negative: nil checks are fine
		return true
	}
	if err == errInternal { // negative: not a sentinel
		return true
	}
	return false
}

func classify(err error) string {
	switch err {
	case ErrOOM: // want `switch on an error with case ErrOOM`
		return "oom"
	case nil:
		return "ok"
	}
	return "other"
}

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("allocating: %v: %v", err, ErrOOM) // want `fmt\.Errorf formats sentinel ErrOOM without %w`
	}
	return fmt.Errorf("allocating: %w", ErrOOM) // negative: wrapped
}

func stringMatch(err error) bool {
	if err.Error() == "out of fast memory" { // want `err\.Error\(\) compared against a string`
		return true
	}
	if strings.Contains(err.Error(), "memory") { // want `strings\.Contains on err\.Error\(\)`
		return true
	}
	return strings.Contains("haystack", "needle") // negative: not an error
}

func suppressed(err error) bool {
	//lint:allow errwrap: comparing a just-created local error identity in a test helper
	return err == ErrOOM
}
