// Package units is the unitsafety fixture: values whose names carry a
// unit suffix (Bytes, Pages, MB, GB) must not flow into another unit
// family without an explicit conversion.
package units

const pageSize = 4096

// pagesToBytes is the explicit-conversion idiom the check points at.
func pagesToBytes(nPages int64) int64 { return nPages * pageSize }

func reserve(sizeBytes int64) {}

type spec struct {
	FastBytes int64
	SlowPages int64
	CapMB     int64
}

func assignments() {
	var fastBytes int64 = 1 << 30
	var numPages int64 = 10

	totalBytes := numPages // want `numPages \(pages\) assigned to totalBytes \(bytes\)`
	_ = totalBytes

	var capMB int64
	capMB = fastBytes // want `fastBytes \(bytes\) assigned to capMB \(mb\)`
	_ = capMB

	var quotaGB = numPages // want `numPages \(pages\) assigned to quotaGB \(gb\)`
	_ = quotaGB

	// Negative: same family flows freely.
	sizeBytes := fastBytes
	_ = sizeBytes

	// Negative: a conversion call is the sanctioned crossing.
	convBytes := pagesToBytes(numPages)
	_ = convBytes

	// Negative: arithmetic reads as an explicit conversion.
	mulBytes := numPages * pageSize
	_ = mulBytes
}

func calls() {
	var numPages int64 = 7
	var szBytes int64 = 4096

	reserve(numPages)               // want `numPages \(pages\) passed as parameter sizeBytes \(bytes\)`
	reserve(szBytes)                // negative: same family
	reserve(pagesToBytes(numPages)) // negative: conversion call
}

func literals(numPages int64) spec {
	return spec{
		FastBytes: numPages, // want `numPages \(pages\) assigned to field FastBytes \(bytes\)`
		SlowPages: numPages, // negative: same family
		CapMB:     0,        // negative: literals carry no unit
	}
}

// boundary is negative: suffix matching respects word boundaries, so an
// acronym ending in the same letters is not a unit.
func boundary() {
	var numPages int64 = 1
	var cOOMB int64
	cOOMB = numPages
	_ = cOOMB
}
