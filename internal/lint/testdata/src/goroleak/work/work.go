// Package work exercises the goroleak analyzer: goroutines must have a
// visible exit path.
package work

import "context"

func step()        {}
func cleanup()     {}
func compute() int { return 0 }

// spin launches a goroutine that can never exit, not even on shutdown.
func spin() {
	go func() {
		for { // want `goroutine spins in a .for. loop with no return or break`
			step()
		}
	}()
}

// pinned blocks forever if nobody ever closes done.
func pinned(done chan struct{}) {
	go func() {
		<-done // want `goroutine blocks on a bare channel receive`
		cleanup()
	}()
}

// Negative: the canonical worker loop — the ctx.Done() case returns.
func polite(ctx context.Context, workCh chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w := <-workCh:
				_ = w
			}
		}
	}()
}

// Negative (near miss): a loop that exits via break is not a spin.
func bounded(stop chan struct{}) {
	go func() {
		for {
			if _, ok := <-stop; !ok {
				break
			}
			step()
		}
	}()
}

// Negative: channel sends are the buffered-result worker idiom, not a
// leak shape.
func buffered(results chan int) {
	go func() {
		results <- compute()
	}()
}

// Negative (near miss): a multi-way select can be woken by either
// channel; only the single bare receive is pinned.
func selective(done, kick chan struct{}) {
	go func() {
		select {
		case <-done:
		case <-kick:
		}
	}()
}
