// Package machine declares an opted-in state machine for the statemach
// fixture.
package machine

// Phase is a job's lifecycle state.
//
//lint:statemach transitions=Advance
type Phase int

const (
	Idle Phase = iota
	Running
	Done
	Failed
)

// Job carries durable state.
type Job struct {
	Phase Phase
}

// Advance is the sanctioned transition function: constant writes here
// are allowed.
func Advance(j *Job, p Phase) {
	if p == Failed && j.Phase == Idle {
		j.Phase = Idle // a validated rollback, sanctioned by the directive
		return
	}
	j.Phase = p
}

// Reset flips durable state with a raw constant outside the sanctioned
// function.
func Reset(j *Job) {
	j.Phase = Idle // want `raw machine.Phase write of Idle outside sanctioned transition function`
}

// Negative: a switch with a default clause need not enumerate.
func Terminal(p Phase) bool {
	switch p {
	case Done, Failed:
		return true
	default:
		return false
	}
}
