// Package user dispatches on the machine package's state enum; the
// exhaustiveness check needs the imported package's constant set.
package user

import "fix/machine"

// Describe misses Failed and has no default: adding a state to the
// enum must fail vet here.
func Describe(p machine.Phase) string {
	switch p { // want `switch over machine.Phase misses states Failed`
	case machine.Idle:
		return "idle"
	case machine.Running:
		return "running"
	case machine.Done:
		return "done"
	}
	return "?"
}

// Hijack writes a state constant from outside the machine package.
func Hijack(j *machine.Job) {
	j.Phase = machine.Done // want `raw machine.Phase write of Done outside sanctioned transition function`
}

// Negative: a default clause stands in for the unnamed states.
func Busy(p machine.Phase) bool {
	switch p {
	case machine.Running:
		return true
	default:
		return false
	}
}

// Negative (near miss): copying an already-validated state variable is
// not a raw transition.
func Mirror(dst *machine.Job, src machine.Job) {
	dst.Phase = src.Phase
}

// Negative: locals are scratch space, not durable state.
func Scratch() machine.Phase {
	p := machine.Idle
	p = machine.Done
	return p
}
