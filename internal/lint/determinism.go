package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer forbids nondeterministic inputs in simulation
// code. The simulator's contract — byte-identical outputs for identical
// inputs, which the sweep cache, the result journal's resume path, and
// the golden tests all rely on — breaks the moment wall-clock time or
// unseeded randomness leaks into a simulated quantity. Simulated time
// comes from internal/simtime; randomness comes from seeded *rand.Rand
// instances (rand.New(rand.NewSource(seed))).
//
// Flagged: calls to time.Now and time.Since, and calls to the global
// math/rand functions (rand.Intn, rand.Float64, rand.Shuffle, ... —
// anything drawing from the shared, unseeded source). Constructing a
// seeded generator (rand.New, rand.NewSource) is the sanctioned
// pattern and is not flagged.
//
// Wall-clock time is legitimate only at the edges — progress display in
// internal/metrics and the command-line binaries under cmd/ — and those
// sites carry explicit //lint:allow determinism annotations explaining
// why.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock time and unseeded global randomness in simulation code",
	Run:  runDeterminism,
}

// globalRandAllowed are math/rand package functions that do not draw
// from the global source: constructors for explicitly seeded
// generators.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes a *rand.Rand, draws nothing itself
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := importedPackage(pass.Info, sel)
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since":
					pass.Reportf(call.Pos(),
						"wall-clock time.%s in simulation code; use simtime for simulated durations (annotate //lint:allow determinism: <reason> if this is genuinely host-side)",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !globalRandAllowed[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"global math/rand.%s draws from the shared unseeded source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) so runs are reproducible",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// importedPackage resolves a selector's base to an imported package
// path, when the selector is pkg.Name for some imported package pkg.
func importedPackage(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
