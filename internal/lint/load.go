package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without any
// go/packages dependency. Imports inside the module resolve recursively
// through the loader itself; everything else (the standard library)
// resolves through the compiler's source importer. Loaded packages are
// memoized, so a whole-tree run type-checks each package once.
//
// The loader is safe for concurrent use: LoadAll parses every requested
// package in parallel and then type-checks in dependency order, running
// independent packages concurrently, which is what makes a module-wide
// sentinel-vet invocation fast enough to gate CI. Identity is preserved
// — one *types.Package per import path — so analyzers can follow a
// types.Object across package boundaries.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute module root (directory containing go.mod)
	ModPath string // module path from go.mod

	// std resolves stdlib imports. The source importer memoizes
	// internally but is not safe for concurrent use, so stdMu serializes
	// it; module-internal packages never pass through it.
	std   types.Importer
	stdMu sync.Mutex

	mu      sync.Mutex
	entries map[string]*pkgEntry
	parsed  map[string]*parsedPkg
}

// pkgEntry is the singleflight slot for one package: whichever
// goroutine wins the Once type-checks it, everyone else waits, and the
// module ends up with exactly one *types.Package per path (analyzers
// rely on that identity to track objects across packages).
type pkgEntry struct {
	once sync.Once
	pkg  *Package
	err  error
}

// parsedPkg is the parse-phase product: syntax plus the module-internal
// imports that decide type-check order.
type parsedPkg struct {
	files   []*ast.File
	imports []string // module-internal import paths, sorted
}

// NewLoader builds a loader for the module rooted at modRoot. modPath
// is the module path (the first `module` directive in go.mod); pass ""
// to read it from go.mod.
func NewLoader(modRoot, modPath string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	if modPath == "" {
		modPath, err = readModulePath(filepath.Join(abs, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: abs,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		entries: map[string]*pkgEntry{},
		parsed:  map[string]*parsedPkg{},
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// internalPath reports whether path imports inside this module.
func (l *Loader) internalPath(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// Import implements types.Importer, routing module-internal paths to
// the loader and everything else to the (serialized) source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.internalPath(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads the package in one directory (which must be inside the
// module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

// Loaded returns every package this loader has successfully
// type-checked — the analysis targets plus every module-internal
// dependency pulled in to check them — sorted by import path. Module
// analyzers use it as their fact source: a state-enum or an
// atomically-accessed field declared in a dependency is visible even
// when only the importing package is under analysis.
func (l *Loader) Loaded() []*Package {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Package
	for _, e := range l.entries {
		if e.pkg != nil {
			out = append(out, e.pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// entry returns the singleflight slot for path, creating it if needed.
func (l *Loader) entry(path string) *pkgEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[path]
	if !ok {
		e = &pkgEntry{}
		l.entries[path] = e
	}
	return e
}

// load parses and type-checks one module-internal package, memoized and
// singleflighted: concurrent loads of the same path share one check.
func (l *Loader) load(path string) (*Package, error) {
	e := l.entry(path)
	e.once.Do(func() { e.pkg, e.err = l.loadUncached(path) })
	return e.pkg, e.err
}

// parse parses one package's sources (memoized), recording its
// module-internal imports for dependency ordering.
func (l *Loader) parse(path string) (*parsedPkg, error) {
	l.mu.Lock()
	if p, ok := l.parsed[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	l.mu.Unlock()

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	p := &parsedPkg{}
	seen := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		p.files = append(p.files, f)
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !l.internalPath(ipath) || seen[ipath] {
				continue
			}
			seen[ipath] = true
			p.imports = append(p.imports, ipath)
		}
	}
	sort.Strings(p.imports)

	l.mu.Lock()
	// First writer wins so concurrent parses agree on one AST.
	if prev, ok := l.parsed[path]; ok {
		p = prev
	} else {
		l.parsed[path] = p
	}
	l.mu.Unlock()
	return p, nil
}

// loadUncached type-checks one module-internal package from its parsed
// sources.
func (l *Loader) loadUncached(path string) (*Package, error) {
	p, err := l.parse(path)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, p.files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: l.dirFor(path), Files: p.files, Types: tpkg, Info: info}, nil
}

// LoadAll loads the packages in dirs module-wide: every package (plus
// its module-internal dependency closure) is parsed in parallel, then
// type-checked in dependency order with independent packages checked
// concurrently. The returned slice holds only the requested packages,
// in deterministic dependency order — a package always follows its
// module-internal dependencies, ties broken by import path — so
// analyzer output is stable run to run regardless of goroutine
// scheduling.
func (l *Loader) LoadAll(dirs []string) ([]*Package, error) {
	requested := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		path, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		requested = append(requested, path)
	}

	// Phase 1: parallel parse of the requested packages and their
	// module-internal dependency closure. The frontier loop is
	// breadth-first: each wave parses in parallel, newly discovered
	// imports form the next wave.
	imports := map[string][]string{}
	var parseErrs []error
	frontier := append([]string(nil), requested...)
	sort.Strings(frontier)
	for len(frontier) > 0 {
		type parseResult struct {
			path string
			p    *parsedPkg
			err  error
		}
		results := make([]parseResult, len(frontier))
		var wg sync.WaitGroup
		sem := make(chan struct{}, maxParallel())
		for i, path := range frontier {
			wg.Add(1)
			go func(i int, path string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				p, err := l.parse(path)
				results[i] = parseResult{path, p, err}
			}(i, path)
		}
		wg.Wait()
		var next []string
		for _, r := range results {
			if r.err != nil {
				parseErrs = append(parseErrs, r.err)
				continue
			}
			imports[r.path] = r.p.imports
			for _, dep := range r.p.imports {
				if _, seen := imports[dep]; !seen {
					imports[dep] = nil // placeholder: claimed for next wave
					next = append(next, dep)
				}
			}
		}
		if len(parseErrs) > 0 {
			return nil, parseErrs[0]
		}
		sort.Strings(next)
		frontier = next
	}

	// Phase 2: dependency-ordered type-checking. Kahn's algorithm over
	// the module-internal import graph, each wave checked in parallel;
	// within a wave and in the final order, ties break by import path.
	order, err := topoOrder(imports)
	if err != nil {
		return nil, err
	}
	for _, wave := range order {
		type loadResult struct {
			path string
			err  error
		}
		results := make([]loadResult, len(wave))
		var wg sync.WaitGroup
		sem := make(chan struct{}, maxParallel())
		for i, path := range wave {
			wg.Add(1)
			go func(i int, path string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				_, err := l.load(path)
				results[i] = loadResult{path, err}
			}(i, path)
		}
		wg.Wait()
		for _, r := range results {
			if r.err != nil {
				return nil, r.err
			}
		}
	}

	// Assemble the requested packages in flattened dependency order.
	want := map[string]bool{}
	for _, path := range requested {
		want[path] = true
	}
	var out []*Package
	for _, wave := range order {
		for _, path := range wave {
			if !want[path] {
				continue
			}
			pkg, err := l.load(path) // memoized
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
			delete(want, path) // requested paths may repeat
		}
	}
	return out, nil
}

// topoOrder layers the import graph into dependency waves: wave 0 has
// no module-internal imports, wave n+1 depends only on waves <= n. An
// import cycle (illegal Go, but a loader must not hang on it) is an
// error naming the members.
func topoOrder(imports map[string][]string) ([][]string, error) {
	paths := make([]string, 0, len(imports))
	for path := range imports {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	indegree := map[string]int{}
	dependents := map[string][]string{}
	for _, path := range paths {
		deps := imports[path]
		if _, ok := indegree[path]; !ok {
			indegree[path] = 0
		}
		for _, dep := range deps {
			indegree[path]++
			dependents[dep] = append(dependents[dep], path)
		}
	}
	var order [][]string
	var wave []string
	for path, d := range indegree {
		if d == 0 {
			wave = append(wave, path)
		}
	}
	placed := 0
	for len(wave) > 0 {
		sort.Strings(wave)
		order = append(order, wave)
		placed += len(wave)
		var next []string
		for _, path := range wave {
			for _, dep := range dependents[path] {
				indegree[dep]--
				if indegree[dep] == 0 {
					next = append(next, dep)
				}
			}
		}
		wave = next
	}
	if placed != len(indegree) {
		var cycle []string
		for path, d := range indegree {
			if d > 0 {
				cycle = append(cycle, path)
			}
		}
		sort.Strings(cycle)
		return nil, fmt.Errorf("import cycle among %v", cycle)
	}
	return order, nil
}

// maxParallel bounds each load wave's concurrency.
func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	if n > 16 {
		n = 16
	}
	return n
}

// ExpandPatterns resolves package patterns (a directory, or a directory
// suffixed with /... for a recursive walk) to package directories,
// relative to the module root. Directories named testdata, hidden
// directories, and directories without Go files are skipped during
// walks, mirroring the go tool.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "." || root == "" {
				root = l.ModRoot
			} else if !filepath.IsAbs(root) {
				root = filepath.Join(l.ModRoot, root)
			}
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					name := d.Name()
					if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
					addDir(filepath.Dir(p))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModRoot, dir)
		}
		addDir(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}
