package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without any
// go/packages dependency. Imports inside the module resolve recursively
// through the loader itself; everything else (the standard library)
// resolves through the compiler's source importer. Loaded packages are
// memoized, so a whole-tree run type-checks each package once.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute module root (directory containing go.mod)
	ModPath string // module path from go.mod

	std  types.Importer
	pkgs map[string]*Package
	errs map[string]error
}

// NewLoader builds a loader for the module rooted at modRoot. modPath
// is the module path (the first `module` directive in go.mod); pass ""
// to read it from go.mod.
func NewLoader(modRoot, modPath string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	if modPath == "" {
		modPath, err = readModulePath(filepath.Join(abs, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: abs,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		errs:    map[string]error{},
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// Import implements types.Importer, routing module-internal paths to
// the loader and everything else to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads the package in one directory (which must be inside the
// module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

// load parses and type-checks one module-internal package, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	pkg, err := l.loadUncached(path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) loadUncached(path string) (*Package, error) {
	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// ExpandPatterns resolves package patterns (a directory, or a directory
// suffixed with /... for a recursive walk) to package directories,
// relative to the module root. Directories named testdata, hidden
// directories, and directories without Go files are skipped during
// walks, mirroring the go tool.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "." || root == "" {
				root = l.ModRoot
			} else if !filepath.IsAbs(root) {
				root = filepath.Join(l.ModRoot, root)
			}
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					name := d.Name()
					if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
					addDir(filepath.Dir(p))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModRoot, dir)
		}
		addDir(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}
