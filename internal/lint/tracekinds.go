package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// TraceKindsAnalyzer enforces the trace schema's closed-world
// invariant: every declared trace Kind constant must be registered in
// Kinds(), handled by an explicit case in Event.String, handled by an
// explicit case in the Chrome exporter (WriteChrome), and documented in
// docs/TRACING.md. The schema is the contract every exporter, test, and
// downstream Perfetto consumer keys off; a kind that exists but is
// invisible to one of those surfaces is a silent hole in the timeline.
//
// This is the compile-time-style replacement for the reflection-based
// kind/doc cross-check test that used to live in internal/trace: the
// invariant now lives in one place, and the trace package's test is a
// thin wrapper over this analyzer.
//
// The check activates structurally — on any package declaring a string
// type named Kind alongside a Kinds() registry function — so it applies
// to internal/trace without being hard-wired to its import path, and
// fixture packages can exercise it.
var TraceKindsAnalyzer = &Analyzer{
	Name: "tracekinds",
	Doc:  "every trace.Kind must be in Kinds(), Event.String, the Chrome exporter, and docs/TRACING.md",
	Run:  runTraceKinds,
}

// tracingDoc is the schema document cross-checked against the
// constants, relative to the module root.
const tracingDoc = "docs/TRACING.md"

type kindConst struct {
	obj   *types.Const
	name  string
	value string // the constant's string value, e.g. "migrate-in"
	pos   ast.Node
}

func runTraceKinds(pass *Pass) {
	scope := pass.Pkg.Scope()
	tn, ok := scope.Lookup("Kind").(*types.TypeName)
	if !ok {
		return
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	kindsDecl := findFunc(pass, "Kinds", "")
	if kindsDecl == nil {
		return // not a trace-schema package
	}

	kinds := collectKindConsts(pass, named)
	if len(kinds) == 0 {
		return
	}

	// 1. Registry: every constant appears in Kinds()'s return literal.
	registered := identsResolving(pass, kindsDecl.Body)
	for _, k := range kinds {
		if !registered[k.obj] {
			pass.Reportf(k.pos.Pos(),
				"trace kind %s (%q) is not listed in Kinds(); exporters and docs checks key off that registry", k.name, k.value)
		}
	}

	// 2. Event.String: every constant has an explicit case.
	if decl := findFunc(pass, "String", "Event"); decl != nil {
		handled := caseIdentsResolving(pass, decl.Body)
		for _, k := range kinds {
			if !handled[k.obj] {
				pass.Reportf(k.pos.Pos(),
					"trace kind %s is not handled by an explicit case in Event.String; falling through to default hides rendering regressions", k.name)
			}
		}
	}

	// 3. Chrome exporter: every constant has an explicit case.
	if decl := findFunc(pass, "WriteChrome", ""); decl != nil {
		handled := caseIdentsResolving(pass, decl.Body)
		for _, k := range kinds {
			if !handled[k.obj] {
				pass.Reportf(k.pos.Pos(),
					"trace kind %s is not handled by an explicit case in WriteChrome; it would be invisible in Perfetto timelines", k.name)
			}
		}
	}

	// 4. Documentation: every kind value appears backticked in
	// docs/TRACING.md, as do the export format names.
	docPath := filepath.Join(pass.ModRoot, filepath.FromSlash(tracingDoc))
	raw, err := os.ReadFile(docPath)
	if err != nil {
		pass.Reportf(pass.Files[0].Pos(), "cannot read %s to cross-check the trace schema: %v", tracingDoc, err)
		return
	}
	doc := string(raw)
	for _, k := range kinds {
		if !strings.Contains(doc, fmt.Sprintf("`%s`", k.value)) {
			pass.Reportf(k.pos.Pos(), "trace kind %s (%q) is not documented in %s", k.name, k.value, tracingDoc)
		}
	}
	if decl := findFunc(pass, "Formats", ""); decl != nil {
		for val, pos := range returnedStrings(pass, decl.Body) {
			if !strings.Contains(doc, fmt.Sprintf("`%s`", val)) {
				pass.Reportf(pos.Pos(), "export format %q is not documented in %s", val, tracingDoc)
			}
		}
	}
}

// collectKindConsts gathers the package-level constants typed as the
// Kind type, in declaration order.
func collectKindConsts(pass *Pass, kind *types.Named) []kindConst {
	var out []kindConst
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.Info.Defs[name].(*types.Const)
					if !ok || !types.Identical(c.Type(), kind) {
						continue
					}
					out = append(out, kindConst{
						obj:   c,
						name:  c.Name(),
						value: constant.StringVal(c.Val()),
						pos:   name,
					})
				}
			}
		}
	}
	return out
}

// findFunc locates a package-level function (recv == "") or a method on
// the named receiver type.
func findFunc(pass *Pass, name, recv string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name {
				continue
			}
			if recv == "" {
				if fd.Recv == nil {
					return fd
				}
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recv {
				return fd
			}
		}
	}
	return nil
}

// identsResolving collects the set of objects referenced by identifiers
// anywhere under n.
func identsResolving(pass *Pass, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	if n == nil {
		return out
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// caseIdentsResolving collects objects referenced by identifiers inside
// switch case expressions under n (not case bodies: referencing a kind
// in another kind's handler does not handle it).
func caseIdentsResolving(pass *Pass, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	if n == nil {
		return out
	}
	ast.Inspect(n, func(c ast.Node) bool {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			ast.Inspect(e, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// returnedStrings collects string values returned (directly or via
// constants) inside composite literals under n, mapped to the node to
// anchor diagnostics at.
func returnedStrings(pass *Pass, n ast.Node) map[string]ast.Node {
	out := map[string]ast.Node{}
	if n == nil {
		return out
	}
	ast.Inspect(n, func(c ast.Node) bool {
		lit, ok := c.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range lit.Elts {
			if tv, ok := pass.Info.Types[elt]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				out[constant.StringVal(tv.Value)] = elt
			}
		}
		return true
	})
	return out
}
