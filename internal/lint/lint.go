// Package lint is sentinel-vet's analyzer framework: a pure-stdlib
// (go/ast, go/parser, go/types, go/token) static-analysis suite that
// machine-enforces the simulator's domain invariants — the properties
// the Go compiler cannot see but the reproduction's credibility rests
// on. Simulations must be bit-deterministic (resume only works because
// identical inputs give byte-identical cells), simulated time must
// never mix with wall-clock time, and byte counts must never be
// confused with page counts.
//
// The framework is deliberately self-contained: no x/tools dependency.
// Analyzers receive a fully type-checked package (a Pass) and report
// Diagnostics; the driver in this package loads packages, applies
// //lint:allow suppression annotations, and renders text or JSON.
// Fixture-based self-tests live under testdata/ with // want
// expectation comments, mirroring x/tools analysistest.
//
// The suite is documented check by check in docs/LINTING.md.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the check that fired, and a
// human-readable message. Positions use paths relative to the module
// root so output is stable across machines.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check. Exactly one of Run and RunModule is
// set: Run inspects one package at a time, RunModule sees the whole
// dependency-ordered package set at once (for checks whose facts cross
// package boundaries, like atomicmix and statemach).
type Analyzer struct {
	// Name is the check's identifier, used in -checks selections and
	// //lint:allow annotations.
	Name string
	// Doc is a one-line description shown by sentinel-vet -list.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
	// RunModule executes the check once over every package under
	// analysis, with the full loaded dependency closure available as a
	// fact source.
	RunModule func(*ModulePass)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	// Fset maps token positions back to file/line/col.
	Fset *token.FileSet
	// Files are the package's parsed files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// PkgPath is the package's import path within the module.
	PkgPath string
	// ModRoot is the module root directory; analyzers that cross-check
	// repo artifacts (docs) resolve paths against it.
	ModRoot string

	check  string
	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass hands the whole analysis run to a module-level analyzer.
// Facts (a state-enum declaration, an atomically-accessed field) are
// gathered from All; findings are only reported against Pkgs.
type ModulePass struct {
	// Fset maps token positions back to file/line/col.
	Fset *token.FileSet
	// Pkgs are the packages under analysis, in dependency order (a
	// package always follows its module-internal dependencies).
	Pkgs []*Package
	// All is Pkgs plus every module-internal dependency the loader
	// pulled in to type-check them, sorted by import path. Analyzers
	// read declarations and directives from here so a fact declared in
	// an imported package is visible even when only the importer is
	// under analysis.
	All []*Package
	// ModRoot is the module root directory.
	ModRoot string

	check  string
	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		MapOrderAnalyzer,
		UnitSafetyAnalyzer,
		TraceKindsAnalyzer,
		ErrWrapAnalyzer,
		CtxFirstAnalyzer,
		HotPathAnalyzer,
		LockSafeAnalyzer,
		GoroLeakAnalyzer,
		AtomicMixAnalyzer,
		StateMachAnalyzer,
	}
}

// ByName resolves a list of check names to analyzers, preserving suite
// order and erroring on unknown names. An empty list selects the full
// suite.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	known := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		known[a.Name] = a
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if known[n] == nil {
			var have []string
			for _, a := range all {
				have = append(have, a.Name)
			}
			return nil, fmt.Errorf("unknown check %q (known checks: %v)", n, have)
		}
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// sortDiagnostics orders findings by file, line, column, then check —
// the stable output order of the driver.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}
