package lint

import (
	"go/ast"
	"go/token"
)

// GoroLeakAnalyzer flags goroutines launched without a visible exit
// path. The serve daemon and the dist coordinator are long-lived
// processes: a goroutine that can only end when some other party acts
// exactly right is a slow leak that -race never sees. Two shapes are
// flagged inside `go func() { ... }` bodies:
//
//  1. An unconditional `for { ... }` loop containing no return and no
//     break — the goroutine can never exit, not even on shutdown. The
//     fix is a select on ctx.Done() (or a done channel) whose case
//     returns.
//  2. A bare, blocking channel receive (`<-ch` as a statement, or a
//     select consisting solely of receives with no default and no
//     other exit) at the top of the goroutine with nothing else to
//     wake it. If the channel is never closed or sent to, the
//     goroutine is pinned forever; receive inside a select that also
//     watches a cancellation signal instead.
//
// Near-misses are deliberately not flagged: loops with a returning
// ctx.Done() case, channel *sends* (the buffered-result idiom used by
// worker pools), and receives inside multi-case selects.
var GoroLeakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines have a ctx.Done()/done-channel exit path: no exitless infinite loops or bare blocking receives",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // go m.run(): the method body is checked where declared
			}
			checkGoroutineBody(pass, lit.Body)
			return true
		})
	}
}

// checkGoroutineBody applies both leak rules to one goroutine body.
func checkGoroutineBody(pass *Pass, body *ast.BlockStmt) {
	// Rule 1: exitless infinite loops anywhere in the body (but not in
	// nested function literals, which are their own goroutines or
	// callbacks with their own lifetimes).
	inspectSameFunc(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopCanExit(loop) {
			pass.Reportf(loop.Pos(),
				"goroutine spins in a `for` loop with no return or break; add a ctx.Done()/done-channel case that exits")
		}
		return true
	})

	// Rule 2: a bare receive as the goroutine's first (blocking)
	// action. Later receives are usually sequenced after some
	// guaranteed event; the first one is the classic pinned-forever
	// shape.
	if len(body.List) == 0 {
		return
	}
	if expr, ok := body.List[0].(*ast.ExprStmt); ok {
		if u, ok := expr.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			pass.Reportf(u.Pos(),
				"goroutine blocks on a bare channel receive with no alternative wake-up; select on a cancellation signal as well")
		}
	}
}

// inspectSameFunc is ast.Inspect restricted to the current function:
// it does not descend into nested function literals.
func inspectSameFunc(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return fn(n)
	})
}

// loopCanExit reports whether an unconditional for loop contains a
// return, an unlabeled break at its own level, a labeled break, a
// panic, or a call that never returns.
func loopCanExit(loop *ast.ForStmt) bool {
	canExit := false
	depth := 0 // nested for/select/switch: their breaks don't exit this loop
	var walk func(ast.Stmt)
	walkBody := func(list []ast.Stmt) {
		for _, s := range list {
			walk(s)
		}
	}
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			canExit = true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && (s.Label != nil || depth == 0) {
				canExit = true
			}
			if s.Tok == token.GOTO {
				canExit = true // conservatively assume the label is outside
			}
		case *ast.ExprStmt:
			if isTerminalCall(s.X) {
				canExit = true
			}
		case *ast.BlockStmt:
			walkBody(s.List)
		case *ast.IfStmt:
			walk(s.Body)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.ForStmt:
			depth++
			walk(s.Body)
			depth--
		case *ast.RangeStmt:
			depth++
			walk(s.Body)
			depth--
		case *ast.SwitchStmt:
			depth++
			walk(s.Body)
			depth--
		case *ast.TypeSwitchStmt:
			depth++
			walk(s.Body)
			depth--
		case *ast.SelectStmt:
			// break inside a select breaks the select, not the loop —
			// but return still exits, so walk with depth bumped.
			depth++
			walk(s.Body)
			depth--
		case *ast.CaseClause:
			walkBody(s.Body)
		case *ast.CommClause:
			walkBody(s.Body)
		case *ast.LabeledStmt:
			walk(s.Stmt)
		}
	}
	walkBody(loop.Body.List)
	return canExit
}
