module sentinel

go 1.22
