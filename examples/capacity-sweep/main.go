// Capacity-sweep shows how little fast memory Sentinel needs: it trains
// ResNet-50 with DRAM capacities from 15% to 100% of the model's peak and
// reports the slowdown against a DRAM-only system (the paper's Fig. 10
// sensitivity study, on one model).
package main

import (
	"fmt"
	"log"
	"strings"

	"sentinel"
)

func main() {
	g, err := sentinel.BuildModel("resnet50", 32)
	if err != nil {
		log.Fatal(err)
	}
	peak := g.PeakMemory()

	ref, err := sentinel.Train(g, sentinel.OptaneHM().WithFastSize(2*peak), "fast-only", 2)
	if err != nil {
		log.Fatal(err)
	}
	base := ref.SteadyStepTime()
	fmt.Printf("resnet50 (batch 32): peak %.1f MiB, DRAM-only step %v\n\n", float64(peak)/(1<<20), base)
	fmt.Printf("%-10s %-12s %-10s %s\n", "fast mem", "step time", "vs DRAM", "")

	for _, pct := range []int{15, 20, 30, 40, 60, 80, 100} {
		machine := sentinel.OptaneHM().WithFastSize(int64(pct) * peak / 100)
		run, err := sentinel.Train(g, machine, "sentinel", 5)
		if err != nil {
			log.Fatal(err)
		}
		d := run.SteadyStepTime()
		over := float64(d)/float64(base) - 1
		bar := strings.Repeat("#", int(over*100/4)+1)
		fmt.Printf("%7d%%   %-12v +%-7.1f%% %s\n", pct, d, 100*over, bar)
	}
	fmt.Println("\nmost of the DRAM can be replaced by Optane at single-digit cost —")
	fmt.Println("the saving the paper reports as '80% less fast memory'.")
}
