// GPU-bert reproduces the paper's GPU-side scenario: BERT-large training
// on a 16 GiB V100 with host memory as the slow tier. It finds each
// policy's maximum batch size (Table V's search) and compares throughput
// at a batch that exceeds device memory (Fig. 12's regime).
package main

import (
	"errors"
	"fmt"
	"log"

	"sentinel"
	"sentinel/internal/exec"
)

func main() {
	machine := sentinel.GPUHM()

	fmt.Println("maximum batch size on 16 GiB of device memory:")
	for _, policy := range []string{"fast-only", "autotm", "capuchin", "sentinel-gpu"} {
		max, err := sentinel.MaxBatch("bert-large", machine, policy, 2048)
		if err != nil {
			log.Fatal(err)
		}
		label := policy
		if policy == "fast-only" {
			label = "tensorflow (no migration)"
		}
		fmt.Printf("  %-26s %d\n", label, max)
	}

	const batch = 64 // ~45 GiB peak: three times the device memory
	g, err := sentinel.BuildModel("bert-large", batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthroughput at batch %d (peak %.1f GiB vs 16 GiB device memory):\n",
		batch, float64(g.PeakMemory())/(1<<30))
	for _, policy := range []string{"um", "autotm", "swapadvisor", "capuchin", "sentinel-gpu"} {
		run, err := sentinel.Train(g, machine, policy, 5)
		if err != nil {
			if errors.Is(err, exec.ErrOOM) {
				fmt.Printf("  %-14s out of memory\n", policy)
				continue
			}
			log.Fatal(err)
		}
		st := run.SteadyStep()
		fmt.Printf("  %-14s step %-9v  %6.1f samples/s  exposed migration %v\n",
			policy, st.Duration, run.Throughput(), st.StallTime)
	}
}
