// Characterize reproduces the paper's Sec. III workload study on any
// model: tensor population (Observation 1), hot/cold distribution
// (Observation 2), and page-level false sharing (Observation 3) — the
// measurements that motivate Sentinel's design.
package main

import (
	"flag"
	"fmt"
	"log"

	"sentinel"
)

func main() {
	modelName := flag.String("model", "resnet32", "model to characterize")
	batch := flag.Int("batch", 128, "batch size")
	flag.Parse()

	g, err := sentinel.BuildModel(*modelName, *batch)
	if err != nil {
		log.Fatal(err)
	}
	machine := sentinel.OptaneHM()

	c, err := sentinel.Characterize(g, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(c)

	p, err := sentinel.CollectProfile(g, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprofiling mechanics: one step, %d protection faults, %v fault overhead\n",
		p.Faults, p.FaultTime)
	fmt.Printf("profiled step %v; fault-free estimate %v (the %.1fx slowdown is paid once and amortized over millions of steps)\n",
		p.StepTime, p.StepTime-p.FaultTime,
		float64(p.StepTime)/float64(p.StepTime-p.FaultTime))
	fmt.Printf("short-lived peak %.1f MiB -> Sentinel's reserved pool; lower bound on fast memory per Sec. IV-E\n",
		float64(p.PeakShortLived)/(1<<20))
}
