// Dynamic-shapes demonstrates the paper's Sec. IV-E handling of dynamic
// graphs: BERT batches arrive with different sequence lengths, bucketized
// into a few padded shapes. Sentinel profiles each bucket once (visible as
// two slow first steps) and manages every later step with the right
// bucket's plan.
package main

import (
	"fmt"
	"log"

	"sentinel"
)

func main() {
	buckets := []int{64, 128}
	graphs, err := sentinel.BERTBuckets("base", 8, buckets)
	if err != nil {
		log.Fatal(err)
	}
	peak := graphs[1].PeakMemory()
	machine := sentinel.OptaneHM().WithFastSize(peak / 5)

	// Batches alternate between short and long sequences.
	schedule := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	run, err := sentinel.TrainDynamic(graphs, machine, "sentinel", schedule)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BERT-base with sequence buckets %v, fast memory = 20%% of peak\n\n", buckets)
	for i, st := range run.Steps {
		tag := ""
		if st.Faults > 0 {
			tag = "  <- profiling this bucket (poison-bit faults)"
		}
		fmt.Printf("step %2d  seq=%-4d %-10v%s\n", i, buckets[schedule[i]], st.Duration, tag)
	}
	fmt.Println("\neach bucket is profiled exactly once; the remaining millions of")
	fmt.Println("steps reuse the per-bucket plans at full speed (paper Sec. IV-E).")
}
