// Quickstart: train ResNet-32 on the Optane-based heterogeneous memory
// platform with only 20% of its peak memory as DRAM, and compare Sentinel
// against the references.
package main

import (
	"fmt"
	"log"

	"sentinel"
)

func main() {
	g, err := sentinel.BuildModel("resnet32", 128)
	if err != nil {
		log.Fatal(err)
	}
	peak := g.PeakMemory()
	fmt.Printf("resnet32 (batch 128): peak memory %.1f MiB, %d tensors, %d layers\n\n",
		float64(peak)/(1<<20), len(g.Tensors), g.NumLayers)

	// Fast memory is only 20% of what the model needs at peak.
	machine := sentinel.OptaneHM().WithFastSize(peak / 5)

	for _, policy := range []string{"slow-only", "first-touch", "ial", "autotm", "sentinel"} {
		run, err := sentinel.Train(g, machine, policy, 5)
		if err != nil {
			log.Fatal(err)
		}
		st := run.SteadyStep()
		fmt.Printf("%-12s step %-10v throughput %7.1f samples/s  (migrated %.1f MiB/step)\n",
			policy, st.Duration, run.Throughput(), float64(st.MigratedTotal())/(1<<20))
	}

	// The DRAM-only reference needs 5x the fast memory.
	all := sentinel.OptaneHM().WithFastSize(2 * peak)
	run, err := sentinel.Train(g, all, "fast-only", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s step %-10v throughput %7.1f samples/s  (reference, 100%% DRAM)\n",
		"fast-only", run.SteadyStepTime(), run.Throughput())
}
