// Custom-workload shows the library running a model it has never heard of:
// the training-step shape is described in a JSON spec (tensor sizes,
// access sweeps, scratch population) and everything else — profiling,
// co-allocation, interval planning — works unchanged. Use this to estimate
// how *your* model would behave on a heterogeneous-memory machine.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sentinel"
	"sentinel/internal/model"
)

func main() {
	path := filepath.Join("examples", "custom-workload", "workload.json")
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	g, err := model.LoadSpec(f)
	if err != nil {
		log.Fatal(err)
	}

	peak := g.PeakMemory()
	fmt.Printf("%s (batch %d): %d tensors, %d layers, peak %.1f MiB\n\n",
		g.Model, g.Batch, len(g.Tensors), g.NumLayers, float64(peak)/(1<<20))

	for _, pct := range []int64{20, 40, 100} {
		machine := sentinel.OptaneHM().WithFastSize(pct * peak / 100)
		run, err := sentinel.Train(g, machine, "sentinel", 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fast = %3d%% of peak: step %-10v  %.1f samples/s\n",
			pct, run.SteadyStepTime(), run.Throughput())
	}
}
