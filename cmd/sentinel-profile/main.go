// Command sentinel-profile runs the Sec. III characterization study on a
// model: tensor population (Observation 1), hot/cold distribution
// (Observation 2), and page-level false sharing (Observation 3).
//
// Usage:
//
//	sentinel-profile -model resnet32 -batch 128
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sentinel/internal/exec"
	"sentinel/internal/memsys"
	"sentinel/internal/model"
	"sentinel/internal/profile"
	"sentinel/internal/simtime"
	"sentinel/internal/tracecli"
)

func main() {
	var (
		modelName = flag.String("model", "resnet32", "model name")
		batch     = flag.Int("batch", 128, "batch size")
		top       = flag.Int("top", 0, "also list the N most-accessed tensors")
	)
	tf := tracecli.Register()
	flag.Parse()

	g, err := model.Build(*modelName, *batch)
	if err != nil {
		fatal(err)
	}
	spec := memsys.OptaneHM()
	c, err := profile.Characterize(g, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Print(c)

	var popts []exec.Option
	if tf.Enabled() {
		popts = append(popts, exec.WithTrace(tf.Bus(), ""))
	}
	p, err := profile.Collect(g, spec, popts...)
	if err != nil {
		fatal(err)
	}
	if err := tf.Write(); err != nil {
		fatal(err)
	}
	fmt.Printf("profiling step: %v (fault overhead %v, %d faults)\n",
		p.StepTime, p.FaultTime, p.Faults)

	if *top > 0 {
		stats := make([]profile.TensorStat, len(p.Tensors))
		copy(stats, p.Tensors)
		sort.Slice(stats, func(i, j int) bool { return stats[i].Accesses > stats[j].Accesses })
		if *top > len(stats) {
			*top = len(stats)
		}
		fmt.Printf("top %d tensors by main-memory accesses:\n", *top)
		for _, ts := range stats[:*top] {
			fmt.Printf("  %-24s %-10s %10s  %6d accesses  layers [%d,%d]\n",
				ts.Name, ts.Kind, simtime.Bytes(ts.Size), ts.Accesses, ts.AllocLayer, ts.FreeLayer)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sentinel-profile:", err)
	os.Exit(1)
}
