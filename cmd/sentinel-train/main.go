// Command sentinel-train runs one model under one tensor-management policy
// on a simulated heterogeneous-memory machine and reports step time,
// throughput, and migration statistics.
//
// Usage:
//
//	sentinel-train -model resnet32 -batch 128 -policy sentinel -fastpct 20
//	sentinel-train -model bert-large -batch 16 -platform gpu -policy capuchin
package main

import (
	"flag"
	"fmt"
	"os"

	"sentinel/internal/chaos"
	"sentinel/internal/exec"
	"sentinel/internal/graph"
	"sentinel/internal/memsys"
	"sentinel/internal/model"
	"sentinel/internal/policyset"
	"sentinel/internal/simtime"
	"sentinel/internal/tracecli"
)

func main() {
	var (
		modelName = flag.String("model", "resnet32", "model name (see -list)")
		specPath  = flag.String("spec", "", "path to a JSON workload spec (overrides -model/-batch)")
		batch     = flag.Int("batch", 128, "batch size")
		policy    = flag.String("policy", "sentinel", "policy name (see -list)")
		platform  = flag.String("platform", "optane", "platform: optane or gpu")
		fastPct   = flag.Float64("fastpct", 20, "fast memory size as % of model peak memory (0 = platform default)")
		steps     = flag.Int("steps", 5, "training steps to simulate")
		list      = flag.Bool("list", false, "list models and policies, then exit")
	)
	tf := tracecli.Register()
	cf := chaos.RegisterFlags()
	of := exec.RegisterOnlineFlags()
	flag.Parse()
	if err := cf.Validate(); err != nil {
		fatal(err)
	}
	if err := of.Validate(); err != nil {
		fatal(err)
	}

	if *list {
		fmt.Println("models:  ", model.Names())
		fmt.Println("policies:", policyset.Names())
		return
	}

	var g *graph.Graph
	var err error
	if *specPath != "" {
		f, ferr := os.Open(*specPath)
		if ferr != nil {
			fatal(ferr)
		}
		g, err = model.LoadSpec(f)
		f.Close()
		if err == nil {
			*modelName = g.Model
			*batch = g.Batch
		}
	} else {
		g, err = model.Build(*modelName, *batch)
	}
	if err != nil {
		fatal(err)
	}
	var spec memsys.Spec
	switch *platform {
	case "optane":
		spec = memsys.OptaneHM()
	case "gpu":
		spec = memsys.GPUHM()
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}
	peak := g.PeakMemory()
	if *fastPct > 0 {
		spec = spec.WithFastSize(int64(*fastPct / 100 * float64(peak)))
	}

	var opts []exec.Option
	if tf.Enabled() {
		opts = append(opts, exec.WithTrace(tf.Bus(), ""))
	}
	if cf.Enabled() {
		opts = append(opts, exec.WithChaos(chaos.New(*cf)))
	}
	if of.Enabled {
		opts = append(opts, exec.WithOnline(*of))
	}
	run, err := policyset.Run(g, spec, *policy, *steps, opts...)
	if err != nil {
		fatal(err)
	}
	if err := tf.Write(); err != nil {
		fatal(err)
	}

	fmt.Printf("model %s  batch %d  policy %s  platform %s\n", *modelName, *batch, *policy, spec.Name)
	fmt.Printf("peak memory %s, short-lived peak %s, fast memory %s (%.0f%% of peak)\n",
		simtime.Bytes(peak), simtime.Bytes(g.PeakShortLived()),
		simtime.Bytes(spec.Fast.Size), 100*float64(spec.Fast.Size)/float64(peak))
	for _, st := range run.Steps {
		fmt.Printf("  %s\n", st)
	}
	if cf.Enabled() {
		var retries, degraded int64
		for _, st := range run.Steps {
			retries += st.MigrateRetries
			degraded += st.Degraded
		}
		diverged := ""
		if run.Diverged {
			diverged = "  plan diverged -> demand-only"
		}
		fmt.Printf("chaos: %v  migrate-retries %d  degraded %d%s\n",
			cf, retries, degraded, diverged)
	}
	if of.Enabled {
		fmt.Printf("online: %v  replans %d  recovered steps %d\n",
			*of, run.Replans, run.RecoveredSteps)
		for _, l := range run.ControllerLog {
			fmt.Printf("  controller %s\n", l)
		}
	}
	fmt.Printf("steady step %v  throughput %.1f samples/s\n",
		run.SteadyStepTime(), run.Throughput())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sentinel-train:", err)
	os.Exit(1)
}
