// Command sentinel-sweep runs a distributed experiment sweep: a
// fault-tolerant coordinator partitions the cell space into hash shards,
// leases them to workers, supervises the leases with heartbeats and
// timeouts, reassigns shards off dead workers (resuming from their
// salvaged journals), and merges the shard journals into tables that are
// byte-identical to a single-process sentinel-bench run.
//
// Workers come in two kinds, freely mixed:
//
//   - -workers-local N spawns N subprocesses of this binary in -worker
//     mode, supervised through the filesystem (journal file + exit state);
//   - -workers-remote url,url leases shards from sentinel-serve instances
//     over the HTTP protocol in docs/DISTRIBUTED.md.
//
// Degradation is built in: a shard that exhausts -max-retries is
// quarantined — its cells render as placeholders with an incomplete-table
// footer — rather than failing the sweep. See docs/DISTRIBUTED.md for the
// full failure matrix.
//
// Usage:
//
//	sentinel-sweep -workers-local 3                      # 3 subprocess workers
//	sentinel-sweep -workers-remote http://a:7070,http://b:7070
//	sentinel-sweep -exp fig7,fig10 -quick -format csv
//	sentinel-sweep -workers-local 3 -lease-ttl 30s -max-retries 3
//
// The -worker, -shard, and -worker-die-after flags are the internal
// worker mode (and its fault-injection hook for CI); they are not meant
// for interactive use.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"sentinel/internal/dist"
	"sentinel/internal/experiment"
	"sentinel/internal/metrics"
	"sentinel/internal/tracecli"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or comma-separated list")
		quick   = flag.Bool("quick", false, "trimmed sweeps for quick runs")
		steps   = flag.Int("steps", 5, "training steps per configuration")
		format  = flag.String("format", "text", "output format: text, csv, or json")
		workers = flag.Int("workers", 0, "worker-pool width inside each shard run (0 = GOMAXPROCS)")

		workersLocal  = flag.Int("workers-local", 0, "number of local subprocess workers")
		workersRemote = flag.String("workers-remote", "", "comma-separated sentinel-serve base URLs to lease shards from")
		shards        = flag.Int("shards", 0, "hash shards to split the sweep into (0 = one per worker)")
		leaseTTL      = flag.Duration("lease-ttl", 10*time.Second, "lease expires after this long without a successful heartbeat")
		heartbeat     = flag.Duration("heartbeat", 0, "supervision poll interval (0 = lease-ttl/4)")
		shardTimeout  = flag.Duration("shard-timeout", 0, "per-shard wall-clock bound; a slower attempt is abandoned (0 = none)")
		maxRetries    = flag.Int("max-retries", 2, "reassignments per shard before it is quarantined")
		maxWorkerFail = flag.Int("max-worker-failures", 2, "consecutive failures before a worker is retired from the fleet")
		backoff       = flag.Duration("backoff", 250*time.Millisecond, "base reassignment backoff (doubles per attempt, seeded jitter)")
		backoffCap    = flag.Duration("backoff-cap", 5*time.Second, "reassignment backoff ceiling")
		seed          = flag.Int64("seed", 1, "jitter seed (fixed seed = reproducible backoff schedule)")
		workDir       = flag.String("dir", "", "directory for worker journal directories (\"\" = system temp)")

		// Internal worker mode (spawned by -workers-local) and its CI
		// fault-injection hooks.
		workerMode = flag.Bool("worker", false, "internal: run one shard in-process and exit")
		shard      = flag.Int("shard", 0, "internal: shard index for -worker mode")
		journalDir = flag.String("journal", "", "internal: journal directory for -worker mode")
		workerDie  = flag.Int("worker-die-after", -1, "internal: SIGKILL self after N journaled cells (CI crash injection)")
		killWorker = flag.String("kill-worker", "", "CI: this local worker's first attempt dies after -kill-after-cells cells")
		killAfter  = flag.Int("kill-after-cells", 3, "CI: cells before the -kill-worker crash")
		failShard  = flag.Int("fail-shard", -1, "CI: every attempt at this shard index dies immediately")
	)
	tf := tracecli.Register()
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sentinel-sweep:", err)
		os.Exit(1)
	}

	ids := experiment.DefaultIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		fail(fmt.Errorf("unknown format %q (known: text, csv, json)", *format))
	}

	if *workerMode {
		if err := runWorker(ids, *shard, *shards, *quick, *steps, *workers, *journalDir, *workerDie); err != nil {
			fail(err)
		}
		return
	}

	urls := splitNonEmpty(*workersRemote)
	if *workersLocal <= 0 && len(urls) == 0 {
		fail(fmt.Errorf("no workers: set -workers-local and/or -workers-remote"))
	}

	exe, err := os.Executable()
	if err != nil {
		fail(fmt.Errorf("resolving own binary for -worker mode: %w", err))
	}
	var fleet []dist.Worker
	for i := 0; i < *workersLocal; i++ {
		name := fmt.Sprintf("local-%d", i)
		var attempts atomic.Int64 // for the first-attempt-only kill hook
		fleet = append(fleet, &dist.LocalWorker{
			WorkerName: name,
			Dir:        *workDir,
			Stderr:     os.Stderr,
			Command: func(t dist.Task, dir string) (string, []string) {
				args := []string{
					"-worker",
					"-shard", strconv.Itoa(t.Shard),
					"-shards", strconv.Itoa(t.Shards),
					"-exp", strings.Join(t.Exps, ","),
					"-steps", strconv.Itoa(t.Steps),
					"-workers", strconv.Itoa(*workers),
					"-journal", dir,
				}
				if t.Quick {
					args = append(args, "-quick")
				}
				// CI fault injection: a named worker's first attempt
				// crashes mid-shard; a doomed shard crashes before its
				// first cell on every attempt.
				if *killWorker == name && attempts.Add(1) == 1 {
					args = append(args, "-worker-die-after", strconv.Itoa(*killAfter))
				}
				if *failShard == t.Shard {
					args = append(args, "-worker-die-after", "0")
				}
				return exe, args
			},
		})
	}
	for _, u := range urls {
		fleet = append(fleet, &dist.RemoteWorker{
			BaseURL: u,
			TTL:     *leaseTTL,
			Client:  &dist.Client{Backoff: *backoff, BackoffCap: *backoffCap, Seed: *seed},
		})
	}

	stats := &metrics.DistStats{}
	cfg := dist.Config{
		Exps: ids, Quick: *quick, Steps: *steps,
		Shards: *shards, LeaseTTL: *leaseTTL, Heartbeat: *heartbeat,
		ShardTimeout: *shardTimeout, MaxRetries: *maxRetries,
		MaxWorkerFailures: *maxWorkerFail,
		Backoff:           *backoff, BackoffCap: *backoffCap, Seed: *seed,
		Log: os.Stderr, Trace: tf.Bus(), Stats: stats,
	}
	coord, err := dist.New(cfg, fleet)
	if err != nil {
		fail(err)
	}

	// SIGINT/SIGTERM cancel the coordination; local worker subprocesses
	// die with their contexts, remote leases are released by Kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := coord.Run(ctx)
	if err != nil {
		if werr := tf.Write(); werr != nil {
			fmt.Fprintln(os.Stderr, "sentinel-sweep: trace:", werr)
		}
		fail(err)
	}

	// Merge every salvaged journal into one cache, then render each
	// experiment through it: completed cells are served from the cache,
	// quarantined shards' cells render as placeholders with the
	// incomplete-table footer.
	cache := experiment.NewCache()
	restored, skipped := res.MergeInto(cache)
	fmt.Fprintf(os.Stderr, "dist: merged %d cell(s) from %d shard(s) (%d corrupt record(s) skipped); %s\n",
		restored, len(res.Shards), skipped, res.Stats)
	if len(res.Quarantined) > 0 {
		fmt.Fprintf(os.Stderr, "dist: %d shard(s) quarantined; their cells render as placeholders\n",
			len(res.Quarantined))
	}

	opts := experiment.Options{
		Steps: *steps, Quick: *quick, Workers: *workers,
		Cache: cache, Shard: res.Plan(coord.Shards()),
	}
	var failures []string
	for _, id := range ids {
		t, err := experiment.Run(id, opts)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", id, err))
			fmt.Fprintf(os.Stderr, "sentinel-sweep: %s: %v\n", id, err)
			continue
		}
		switch *format {
		case "csv":
			if err := t.WriteCSV(os.Stdout); err != nil {
				fail(err)
			}
		case "json":
			if err := t.WriteJSON(os.Stdout); err != nil {
				fail(err)
			}
		default:
			fmt.Println(t)
		}
	}
	if err := tf.Write(); err != nil {
		fail(err)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "sentinel-sweep: %d experiment(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
}

// runWorker is -worker mode: execute one hash shard of the sweep,
// journaling every completed in-shard cell, exactly as the protocol in
// docs/DISTRIBUTED.md requires of a worker. The rendered tables are
// discarded — the journal is the product; the coordinator merges it.
func runWorker(ids []string, shard, shards int, quick bool, steps, workers int, dir string, dieAfter int) error {
	if dir == "" {
		return fmt.Errorf("-worker requires -journal")
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return fmt.Errorf("-worker requires 0 <= -shard < -shards, got %d/%d", shard, shards)
	}
	j, err := experiment.OpenJournal(dir)
	if err != nil {
		return err
	}
	defer j.Close()
	// A fresh private cache seeded from the journal: a reassigned shard
	// resumes from its predecessor's salvage instead of recomputing.
	cache := experiment.NewCache()
	if restored, _, err := j.Replay(cache); err != nil {
		return err
	} else if restored > 0 {
		fmt.Fprintf(os.Stderr, "sentinel-sweep[%d/%d]: resumed %d cell(s) from salvage\n", shard, shards, restored)
	}
	o := experiment.Options{
		Steps: steps, Quick: quick, Workers: workers,
		Cache: cache, Journal: j,
		Shard: experiment.ShardPlan{Count: shards, Index: shard},
	}
	if dieAfter >= 0 {
		o.Progress = &crashAfter{j: j, cells: dieAfter}
		if dieAfter == 0 {
			// Die before the first cell: the doomed-shard CI hook.
			(&crashAfter{j: j, cells: 0}).CellDone()
		}
	}
	for _, id := range ids {
		if _, err := experiment.Run(id, o); err != nil {
			return fmt.Errorf("shard %d/%d: %s: %w", shard, shards, id, err)
		}
	}
	if err := j.Sync(); err != nil {
		return err
	}
	if err := j.Err(); err != nil {
		return fmt.Errorf("shard %d/%d: journal: %w", shard, shards, err)
	}
	fmt.Fprintf(os.Stderr, "sentinel-sweep[%d/%d]: journaled %d cell(s)\n", shard, shards, j.Appended())
	return nil
}

// crashAfter is the CI fault injector: SIGKILL our own process once the
// journal holds the configured number of cells — indistinguishable from
// a real worker crash, which is the point. SIGKILL (not os.Exit) so no
// deferred cleanup runs: the journal must survive on raw append
// durability alone.
type crashAfter struct {
	j     *experiment.Journal
	cells int
}

func (c *crashAfter) AddCells(int) {}

func (c *crashAfter) CellDone() {
	if c.j.Appended() >= c.cells {
		syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck // self-SIGKILL cannot meaningfully fail
		select {}                                  // unreachable: die before journaling anything more
	}
}

// splitNonEmpty splits a comma-separated list, dropping empty entries.
func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
