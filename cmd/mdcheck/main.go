// mdcheck is the CI markdown link checker: it scans the given markdown
// files for inline links and images, and fails when a relative link
// points at a path that does not exist. External links (http, https,
// mailto) and pure in-page anchors are skipped — CI must not depend on
// the network. Anchored file links (doc.md#section) are checked for the
// file part only.
//
// Usage: go run ./cmd/mdcheck README.md docs/*.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style links are rare in this repo and not
// checked. The target capture stops at the first ')' or whitespace,
// which also drops optional titles: [t](path "title").
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
			broken++
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skip(target) {
					continue
				}
				if frag := strings.IndexByte(target, '#'); frag >= 0 {
					target = target[:frag]
					if target == "" {
						continue // in-page anchor
					}
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (%s)\n", file, i+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

func skip(target string) bool {
	for _, p := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(target, p) {
			return true
		}
	}
	return false
}
