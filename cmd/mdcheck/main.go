// mdcheck is the CI markdown checker. It scans the given markdown
// files for two kinds of rot:
//
//   - inline links and images whose relative targets do not exist
//     (external http/https/mailto links and pure in-page anchors are
//     skipped — CI must not depend on the network; anchored file links
//     like doc.md#section are checked for the file part only), and
//   - backticked references to Go packages and files (`internal/...`,
//     `cmd/...`, `examples/...`, `docs/...`) that no longer exist in
//     the tree, so prose does not keep naming packages that were
//     renamed or deleted. A trailing `/...` wildcard checks the prefix
//     directory; a trailing :line suffix is ignored; the package.Symbol
//     citation form (`internal/memsys.BWTrace`) checks the package
//     directory.
//
// Link targets resolve relative to the referencing file; Go paths
// resolve relative to the repo root (the working directory), which is
// how docs cite them.
//
// With -cmds FILE.md, mdcheck additionally enforces command coverage:
// every binary under cmd/ must be mentioned by name in FILE.md
// (normally the README), so new tools cannot land undocumented.
//
// Usage: go run ./cmd/mdcheck -cmds README.md README.md docs/*.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style links are rare in this repo and not
// checked. The target capture stops at the first ')' or whitespace,
// which also drops optional titles: [t](path "title").
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// codeSpanRE matches inline code spans; goPathRE then decides whether a
// span's content is a repo path claim worth checking.
var codeSpanRE = regexp.MustCompile("`([^`]+)`")

// goPathRE matches spans that name a Go package or file in this repo:
// an optional ./ or module-path prefix, then a tracked top-level area,
// then path segments, with an optional /... wildcard or :line suffix.
// Spans with spaces, flags, or glob characters do not match.
var goPathRE = regexp.MustCompile(`^(?:\./)?(?:sentinel/)?((?:internal|cmd|examples|docs)(?:/[A-Za-z0-9_.\-]+)*?)(/\.\.\.)?(:[0-9]+)?$`)

// symbolRE recognizes the package.Symbol citation form: the last path
// segment is pkgname.Exported, where the exported identifier starts
// with an uppercase letter (so file names like runtime.go don't match).
var symbolRE = regexp.MustCompile(`^(.*[^./])\.[A-Z][A-Za-z0-9_]*$`)

func main() {
	cmds := flag.String("cmds", "", "markdown file that must mention every binary under cmd/ by name")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck [-cmds README.md] FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	broken := checkFiles(".", flag.Args(), os.Stderr)
	if *cmds != "" {
		broken += checkCmdCoverage(".", *cmds, os.Stderr)
	}
	if broken > 0 {
		os.Exit(1)
	}
}

// checkFiles scans the markdown files, resolving Go-path references
// against root, and returns the number of broken references found
// (reporting each to w).
func checkFiles(root string, files []string, w io.Writer) int {
	broken := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(w, "mdcheck: %v\n", err)
			broken++
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			broken += checkLinks(file, i+1, line, w)
			broken += checkGoPaths(root, file, i+1, line, w)
		}
	}
	if broken > 0 {
		fmt.Fprintf(w, "mdcheck: %d broken reference(s)\n", broken)
	}
	return broken
}

// checkLinks validates the relative link targets on one line.
func checkLinks(file string, lineno int, line string, w io.Writer) int {
	broken := 0
	for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
		target := m[1]
		if skip(target) {
			continue
		}
		if frag := strings.IndexByte(target, '#'); frag >= 0 {
			target = target[:frag]
			if target == "" {
				continue // in-page anchor
			}
		}
		resolved := filepath.Join(filepath.Dir(file), target)
		if _, err := os.Stat(resolved); err != nil {
			fmt.Fprintf(w, "%s:%d: broken link %q (%s)\n", file, lineno, m[1], resolved)
			broken++
		}
	}
	return broken
}

// checkGoPaths validates the backticked repo-path references on one
// line.
func checkGoPaths(root, file string, lineno int, line string, w io.Writer) int {
	broken := 0
	for _, m := range codeSpanRE.FindAllStringSubmatch(line, -1) {
		gp := goPathRE.FindStringSubmatch(m[1])
		if gp == nil {
			continue
		}
		path := gp[1]
		// package.Symbol citations (`internal/memsys.BWTrace`) name an
		// exported identifier inside a package: strip the symbol and
		// check the package directory.
		if sym := symbolRE.FindStringSubmatch(path); sym != nil {
			path = sym[1]
		}
		resolved := filepath.Join(root, filepath.FromSlash(path))
		if _, err := os.Stat(resolved); err != nil {
			fmt.Fprintf(w, "%s:%d: stale Go path reference %q (%s does not exist)\n",
				file, lineno, m[1], resolved)
			broken++
		}
	}
	return broken
}

// checkCmdCoverage enforces the cmd-coverage rule: every directory
// under root/cmd is a binary, and each binary's name must appear
// somewhere in the given markdown file. It returns the number of
// undocumented binaries (reporting each to w).
func checkCmdCoverage(root, file string, w io.Writer) int {
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		fmt.Fprintf(w, "mdcheck: -cmds: %v\n", err)
		return 1
	}
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(w, "mdcheck: -cmds: %v\n", err)
		return 1
	}
	missing := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(string(data), e.Name()) {
			fmt.Fprintf(w, "%s: binary cmd/%s is not mentioned (every tool must be documented)\n",
				file, e.Name())
			missing++
		}
	}
	if missing > 0 {
		fmt.Fprintf(w, "mdcheck: %d undocumented command(s)\n", missing)
	}
	return missing
}

func skip(target string) bool {
	for _, p := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(target, p) {
			return true
		}
	}
	return false
}
