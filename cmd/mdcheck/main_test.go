package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// layout builds a throwaway repo tree with one markdown file and
// returns (root, mdPath).
func layout(t *testing.T, md string) (string, string) {
	t.Helper()
	root := t.TempDir()
	for _, dir := range []string{"internal/exec", "cmd/sentinel-train", "docs"} {
		if err := os.MkdirAll(filepath.Join(root, dir), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []string{"internal/exec/runtime.go", "docs/TRACING.md"} {
		if err := os.WriteFile(filepath.Join(root, f), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mdPath := filepath.Join(root, "README.md")
	if err := os.WriteFile(mdPath, []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	return root, mdPath
}

func TestGoPathReferences(t *testing.T) {
	md := strings.Join([]string{
		"Existing package `internal/exec` is fine.",
		"Existing file `internal/exec/runtime.go` is fine.",
		"Line anchors `internal/exec/runtime.go:42` are fine.",
		"Wildcards `internal/exec/...` check the prefix.",
		"Module-qualified `sentinel/internal/exec` is fine.",
		"Symbol citations `internal/exec.Runtime` check the package dir.",
		"Stale symbol citations `internal/vanished.Thing` are stale.",
		"Commands with flags `go run ./cmd/sentinel-train -steps 3` are not path claims.",
		"Plain words `determinism` are not path claims.",
		"Deleted package `internal/vanished` is stale.",
		"Deleted file `internal/exec/gone.go` is stale.",
		"Deleted wildcard `internal/vanished/...` is stale.",
	}, "\n")
	root, mdPath := layout(t, md)

	var out strings.Builder
	broken := checkFiles(root, []string{mdPath}, &out)
	if broken != 4 {
		t.Errorf("want 4 stale references, got %d:\n%s", broken, out.String())
	}
	for _, want := range []string{"internal/vanished", "internal/exec/gone.go", "internal/vanished/...", "internal/vanished.Thing"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output does not flag %q:\n%s", want, out.String())
		}
	}
}

func TestLinksStillChecked(t *testing.T) {
	md := strings.Join([]string{
		"[good](docs/TRACING.md)",
		"[anchored](docs/TRACING.md#schema)",
		"[in-page](#section)",
		"[external](https://example.com/nope)",
		"[broken](docs/MISSING.md)",
	}, "\n")
	root, mdPath := layout(t, md)

	var out strings.Builder
	broken := checkFiles(root, []string{mdPath}, &out)
	if broken != 1 {
		t.Errorf("want 1 broken link, got %d:\n%s", broken, out.String())
	}
	if !strings.Contains(out.String(), "MISSING.md") {
		t.Errorf("output does not name the broken link:\n%s", out.String())
	}
}

func TestCmdCoverage(t *testing.T) {
	root := t.TempDir()
	for _, dir := range []string{"cmd/sentinel-bench", "cmd/sentinel-serve", "cmd/mdcheck"} {
		if err := os.MkdirAll(filepath.Join(root, dir), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	md := filepath.Join(root, "README.md")
	if err := os.WriteFile(md, []byte("Run `sentinel-bench` and check docs with `mdcheck`.\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if missing := checkCmdCoverage(root, md, &out); missing != 1 {
		t.Errorf("want 1 undocumented command, got %d:\n%s", missing, out.String())
	}
	if !strings.Contains(out.String(), "cmd/sentinel-serve") {
		t.Errorf("output does not name the undocumented binary:\n%s", out.String())
	}

	// Documenting the missing binary clears the failure.
	if err := os.WriteFile(md, []byte("`sentinel-bench`, `sentinel-serve`, `mdcheck`.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if missing := checkCmdCoverage(root, md, &out); missing != 0 {
		t.Errorf("want full coverage, got %d:\n%s", missing, out.String())
	}
}

func TestCmdCoverageMissingInputs(t *testing.T) {
	root := t.TempDir()
	var out strings.Builder
	if got := checkCmdCoverage(root, filepath.Join(root, "README.md"), &out); got != 1 {
		t.Errorf("missing cmd/ dir should count as broken, got %d", got)
	}
	if err := os.MkdirAll(filepath.Join(root, "cmd/tool"), 0o755); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if got := checkCmdCoverage(root, filepath.Join(root, "README.md"), &out); got != 1 {
		t.Errorf("missing markdown file should count as broken, got %d", got)
	}
}

func TestMissingFileIsAFailure(t *testing.T) {
	var out strings.Builder
	if broken := checkFiles(t.TempDir(), []string{"no-such.md"}, &out); broken != 1 {
		t.Errorf("want missing input counted as broken, got %d", broken)
	}
}
