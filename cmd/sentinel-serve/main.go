// Command sentinel-serve is planning-as-a-service: a long-running
// HTTP+JSON daemon that answers plan, simulate, and experiment (sweep)
// requests from one resident process, instead of forking a CLI per
// request. Requests multiplex onto the experiment harness's worker pool
// and share one singleflight plan cache, so concurrent identical
// requests compute once and repeats are served from memory.
//
// Service scaffolding: request validation with typed JSON errors,
// per-tenant admission control with backpressure (bounded queue, 429 +
// Retry-After on saturation), /healthz and /readyz endpoints, a
// /metrics endpoint exporting plan-cache, sweep, and request counters,
// and graceful drain on SIGINT/SIGTERM — readiness flips to 503, new
// work is refused, in-flight requests finish, then the process exits 0.
//
// The HTTP API is documented in docs/SERVING.md. Served experiment
// responses are byte-identical to the equivalent sentinel-bench run.
//
// Usage:
//
//	sentinel-serve                        # listen on :8372
//	sentinel-serve -addr 127.0.0.1:9000   # explicit listen address
//	sentinel-serve -max-inflight 8 -queue 256 -tenant-limit 16
//	sentinel-serve -quick                 # sweep requests default to -quick
//	curl -s localhost:8372/v1/experiment?id=table1\&format=csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sentinel/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8372", "listen address")
		workers     = flag.Int("workers", 0, "experiment worker-pool width per sweep request (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 4, "requests executing concurrently")
		queue       = flag.Int("queue", 64, "requests waiting for an execution slot before 429s start")
		tenantLimit = flag.Int("tenant-limit", 0, "max admitted requests per tenant key (0 = unlimited)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		quick       = flag.Bool("quick", false, "sweep requests default to trimmed (-quick) sweeps")
		maxShards   = flag.Int("max-shards", 2, "distributed-sweep shard leases held concurrently")
		shardTTL    = flag.Duration("shard-ttl", time.Minute, "default and cap for a shard lease's TTL")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "sentinel-serve: ", log.LstdFlags)

	srv := serve.New(serve.Config{
		Workers:     *workers,
		MaxInFlight: *maxInflight,
		QueueDepth:  *queue,
		PerTenant:   *tenantLimit,
		RetryAfter:  *retryAfter,
		Quick:       *quick,
		MaxShards:   *maxShards,
		ShardTTL:    *shardTTL,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGINT/SIGTERM begin the drain — the same shutdown plumbing the
	// sweep CLI uses (signal.NotifyContext), applied to a server:
	// readiness flips to 503, new API requests are refused with
	// Retry-After, and http.Server.Shutdown waits for in-flight
	// requests up to -drain-timeout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (max-inflight %d, queue %d, tenant-limit %d)",
			*addr, *maxInflight, *queue, *tenantLimit)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure (or Shutdown, which
		// cannot have been called yet on this path).
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (readiness now 503, up to %v for in-flight requests)", *drain)
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("drain incomplete after %v: %v", *drain, err)
		fmt.Fprintln(os.Stderr, finalSummary(srv))
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}
	logger.Printf("drained cleanly")
	fmt.Fprintln(os.Stderr, finalSummary(srv))
}

// finalSummary renders the lifetime counters on shutdown, mirroring the
// cache/summary lines sentinel-bench prints after a sweep.
func finalSummary(srv *serve.Server) string {
	return fmt.Sprintf("requests: %s\ncache: %s\nshards: %s",
		srv.RequestStats(), srv.CacheStats(), srv.DistStats())
}
