// Command sentinel-validate runs the reproduction's self-check: each line
// is a claim from the paper that must hold in this simulation (with the
// tolerances documented in EXPERIMENTS.md). Exits non-zero if any check
// fails — suitable for CI. Independent simulations fan out over a worker
// pool (-workers); -seq forces the sequential cache-free reference path.
package main

import (
	"flag"
	"fmt"
	"os"

	"sentinel/internal/experiment"
	"sentinel/internal/tracecli"
)

func main() {
	var (
		steps   = flag.Int("steps", 5, "training steps per configuration")
		workers = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS, 1 = sequential)")
		seq     = flag.Bool("seq", false, "sequential reference path: one worker, plan cache disabled")
	)
	tf := tracecli.Register()
	flag.Parse()

	opts := experiment.Options{Steps: *steps, Workers: *workers, Trace: tf.Bus()}
	if *seq {
		opts.Workers = 1
		opts.NoCache = true
	}
	checks, err := experiment.Validate(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-validate:", err)
		os.Exit(1)
	}
	failed := 0
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-4s %-22s %s\n     %s\n", status, c.Name, c.Claim, c.Detail)
	}
	fmt.Printf("\n%d/%d checks passed\n", len(checks)-failed, len(checks))
	if err := tf.Write(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-validate:", err)
		os.Exit(1)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
