package main

import (
	"strings"
	"testing"
)

func sampleFile() *File {
	f := &File{
		Schema: Schema, GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64",
		CPU: "test-cpu", NumCPU: 8, Benchtime: "1s",
	}
	for _, e := range suite {
		for _, b := range e.benches {
			f.Benchmarks = append(f.Benchmarks, Result{
				Name: b, Pkg: e.pkg, Iters: 100, NsOp: 100, BOp: 64, AllocsOp: 2,
			})
		}
	}
	sortBenchmarks(f)
	return f
}

func sortBenchmarks(f *File) {
	for i := range f.Benchmarks {
		for j := i + 1; j < len(f.Benchmarks); j++ {
			a, b := f.Benchmarks[i], f.Benchmarks[j]
			if b.Pkg < a.Pkg || (b.Pkg == a.Pkg && b.Name < a.Name) {
				f.Benchmarks[i], f.Benchmarks[j] = b, a
			}
		}
	}
}

func TestCompareNoRegression(t *testing.T) {
	old, cur := sampleFile(), sampleFile()
	// Improvements and small jitter must pass.
	for i := range cur.Benchmarks {
		cur.Benchmarks[i].NsOp *= 0.5
	}
	if regs := Compare(old, cur, DefaultThresholds()); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

// TestCompareRegressedBaseline is the gate's contract: fed a run that is
// artificially slower than the baseline, Compare must flag it (and main
// exits non-zero on any flagged regression).
func TestCompareRegressedBaseline(t *testing.T) {
	old, cur := sampleFile(), sampleFile()
	cur.Benchmarks[0].NsOp = old.Benchmarks[0].NsOp * 10
	regs := Compare(old, cur, DefaultThresholds())
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].Metric != "ns/op" || regs[0].Name != cur.Benchmarks[0].Name {
		t.Fatalf("wrong regression: %+v", regs[0])
	}
}

func TestCompareAllocRegression(t *testing.T) {
	old, cur := sampleFile(), sampleFile()
	// allocs/op is deterministic: +2 allocs over a 2-alloc baseline must
	// trip even though the ratio threshold alone would allow noise.
	cur.Benchmarks[3].AllocsOp = old.Benchmarks[3].AllocsOp + 2
	regs := Compare(old, cur, DefaultThresholds())
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
	// +1 alloc sits inside the absolute slack.
	cur.Benchmarks[3].AllocsOp = old.Benchmarks[3].AllocsOp + 1
	if regs := Compare(old, cur, DefaultThresholds()); len(regs) != 0 {
		t.Fatalf("slack not honored: %v", regs)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old, cur := sampleFile(), sampleFile()
	cur.Benchmarks = cur.Benchmarks[1:]
	regs := Compare(old, cur, DefaultThresholds())
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("want one missing-benchmark failure, got %v", regs)
	}
}

func TestValidate(t *testing.T) {
	f := sampleFile()
	if err := Validate(f); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	bad := sampleFile()
	bad.Schema = "sentinel-bench/v0"
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema file accepted: %v", err)
	}
	bad = sampleFile()
	bad.Benchmarks = bad.Benchmarks[1:]
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("incomplete suite accepted: %v", err)
	}
	bad = sampleFile()
	bad.Benchmarks[0].NsOp = 0
	if err := Validate(bad); err == nil {
		t.Fatal("zero ns/op accepted")
	}
	bad = sampleFile()
	bad.Benchmarks[0], bad.Benchmarks[1] = bad.Benchmarks[1], bad.Benchmarks[0]
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Fatalf("unsorted file accepted: %v", err)
	}
}

func TestParseBenchOutput(t *testing.T) {
	out := []byte(`goos: linux
goarch: amd64
pkg: sentinel/internal/kernel
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTouchProfiled-8   	 8426408	       137.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkMigrate           	  721843	      1662 ns/op	      32 B/op	       1 allocs/op
BenchmarkBig-16            	       2	 108121642 ns/op	20528248 B/op	  337115 allocs/op
PASS
ok  	sentinel/internal/kernel	2.5s
`)
	rs := ParseBenchOutput("sentinel/internal/kernel", out)
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	if rs[0].Name != "BenchmarkTouchProfiled" || rs[0].Iters != 8426408 || rs[0].NsOp != 137.7 {
		t.Fatalf("bad first result: %+v", rs[0])
	}
	if rs[1].Name != "BenchmarkMigrate" || rs[1].BOp != 32 || rs[1].AllocsOp != 1 {
		t.Fatalf("bad second result: %+v", rs[1])
	}
	if rs[2].AllocsOp != 337115 || rs[2].Pkg != "sentinel/internal/kernel" {
		t.Fatalf("bad third result: %+v", rs[2])
	}
}
