// Command sentinel-benchgate runs the curated benchmark suite, records the
// results as a schema-versioned BENCH_*.json snapshot, and gates changes
// against a previously committed snapshot: it exits non-zero when any
// benchmark regresses past the configured thresholds, so CI can fail a PR
// that slows a hot path down.
//
// The suite is fixed in code (see suite below): micro-benchmarks over the
// kernel fault/migrate path, allocator place/reclaim, trace emit, and
// memsys bandwidth math, plus the end-to-end experiment sweep benchmark.
// Per-benchmark ns/op, B/op, and allocs/op are recorded together with an
// environment fingerprint. Allocation counts are machine-independent and
// gated tightly; ns/op is machine-dependent and gated with a generous
// configurable ratio, so the gate catches order-of-magnitude rot without
// flaking on runner noise. docs/BENCHMARKING.md describes the workflow,
// including how to update the baseline legitimately.
//
// Usage:
//
//	sentinel-benchgate -out BENCH_7.json -against BENCH_6.json   # run, record, gate
//	sentinel-benchgate -against BENCH_6.json                     # run and gate only
//	sentinel-benchgate -check BENCH_6.json                       # schema/shape validation
//	sentinel-benchgate -compare BENCH_7.json -against BENCH_6.json  # offline compare
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the snapshot format; bump on incompatible changes.
const Schema = "sentinel-bench/v1"

// Result is one benchmark's measurement.
type Result struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Pkg is the Go package path the benchmark lives in.
	Pkg string `json:"pkg"`
	// Iters is the iteration count go test settled on.
	Iters int64 `json:"iters"`
	// NsOp, BOp, AllocsOp are the standard benchmark metrics.
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// File is one BENCH_*.json snapshot.
type File struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu"`
	NumCPU    int    `json:"num_cpu"`
	Benchtime string `json:"benchtime"`
	// Benchmarks is sorted by (pkg, name) so snapshots diff cleanly.
	Benchmarks []Result `json:"benchmarks"`
}

// suiteEntry names the benchmarks required from one package.
type suiteEntry struct {
	pkg     string
	benches []string
}

// suite is the curated benchmark set. Every entry is required: a snapshot
// missing one of these fails -check, and a run that no longer produces one
// fails the gate (a deleted benchmark cannot hide a regression).
var suite = []suiteEntry{
	{pkg: "sentinel", benches: []string{
		// End-to-end: the Fig. 10 capacity sweep regenerates an entire
		// experiment (graph build, profile, plan, simulate, render) per
		// iteration — the whole-simulator throughput number.
		"BenchmarkFig10",
		"BenchmarkSentinelStep",
		"BenchmarkProfilingStep",
	}},
	{pkg: "sentinel/internal/kernel", benches: []string{
		"BenchmarkTouchProfiled",
		"BenchmarkTouchUnprofiled",
		"BenchmarkMigrate",
		"BenchmarkTierBytes",
	}},
	{pkg: "sentinel/internal/alloc", benches: []string{
		"BenchmarkAllocFreePacked",
		"BenchmarkAllocFreeGrouped",
		"BenchmarkReclaim",
		"BenchmarkArenaBytes",
	}},
	{pkg: "sentinel/internal/trace", benches: []string{
		"BenchmarkBusEmit",
		"BenchmarkSinkEmit",
		"BenchmarkSinkEmitDisabled",
	}},
	{pkg: "sentinel/internal/memsys", benches: []string{
		"BenchmarkChannelSubmit",
		"BenchmarkChannelSubmitUrgent",
		"BenchmarkBWTraceConsume",
	}},
}

// Thresholds bound how much worse the new run may be before the gate trips.
// A regression is declared when new > old*Ratio + Abs; the absolute slack
// keeps tiny denominators (a 5 ns benchmark, a 0-alloc benchmark) from
// flagging noise.
type Thresholds struct {
	NsRatio     float64 // ns/op ratio ceiling (machine-dependent metric)
	NsAbs       float64 // ns/op absolute slack
	AllocsRatio float64 // allocs/op ratio ceiling (deterministic metric)
	AllocsAbs   int64   // allocs/op absolute slack
	BytesRatio  float64 // B/op ratio ceiling
	BytesAbs    int64   // B/op absolute slack
}

// DefaultThresholds is tuned for same-machine comparison (local runs).
func DefaultThresholds() Thresholds {
	return Thresholds{
		NsRatio: 1.30, NsAbs: 50,
		AllocsRatio: 1.01, AllocsAbs: 1,
		BytesRatio: 1.05, BytesAbs: 64,
	}
}

// Regression is one gate violation.
type Regression struct {
	Name, Pkg, Metric string
	Old, New          float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s (%s): %s regressed %.4g -> %.4g (%.2fx)",
		r.Name, r.Pkg, r.Metric, r.Old, r.New, r.New/r.Old)
}

// Compare gates new against old and returns every violation. Benchmarks
// present only in old fail (required coverage disappeared); benchmarks
// present only in new are allowed (fresh coverage).
func Compare(old, new *File, th Thresholds) []Regression {
	newBy := make(map[string]Result, len(new.Benchmarks))
	for _, r := range new.Benchmarks {
		newBy[r.Pkg+"."+r.Name] = r
	}
	var regs []Regression
	for _, o := range old.Benchmarks {
		n, ok := newBy[o.Pkg+"."+o.Name]
		if !ok {
			regs = append(regs, Regression{Name: o.Name, Pkg: o.Pkg, Metric: "missing",
				Old: o.NsOp, New: 0})
			continue
		}
		if n.NsOp > o.NsOp*th.NsRatio+th.NsAbs {
			regs = append(regs, Regression{Name: o.Name, Pkg: o.Pkg, Metric: "ns/op",
				Old: o.NsOp, New: n.NsOp})
		}
		if n.AllocsOp > int64(float64(o.AllocsOp)*th.AllocsRatio)+th.AllocsAbs {
			regs = append(regs, Regression{Name: o.Name, Pkg: o.Pkg, Metric: "allocs/op",
				Old: float64(o.AllocsOp), New: float64(n.AllocsOp)})
		}
		if n.BOp > int64(float64(o.BOp)*th.BytesRatio)+th.BytesAbs {
			regs = append(regs, Regression{Name: o.Name, Pkg: o.Pkg, Metric: "B/op",
				Old: float64(o.BOp), New: float64(n.BOp)})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Pkg != regs[j].Pkg {
			return regs[i].Pkg < regs[j].Pkg
		}
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// Validate checks a snapshot's schema and that every suite benchmark is
// present with sane values.
func Validate(f *File) error {
	if f.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", f.Schema, Schema)
	}
	if f.GoVersion == "" || f.GOOS == "" || f.GOARCH == "" {
		return fmt.Errorf("missing environment fingerprint (go/goos/goarch)")
	}
	have := make(map[string]Result, len(f.Benchmarks))
	for _, r := range f.Benchmarks {
		if r.NsOp <= 0 {
			return fmt.Errorf("%s (%s): non-positive ns/op %v", r.Name, r.Pkg, r.NsOp)
		}
		if r.Iters <= 0 {
			return fmt.Errorf("%s (%s): non-positive iteration count %d", r.Name, r.Pkg, r.Iters)
		}
		if r.BOp < 0 || r.AllocsOp < 0 {
			return fmt.Errorf("%s (%s): negative allocation metrics", r.Name, r.Pkg)
		}
		have[r.Pkg+"."+r.Name] = r
	}
	for _, e := range suite {
		for _, b := range e.benches {
			if _, ok := have[e.pkg+"."+b]; !ok {
				return fmt.Errorf("required benchmark %s missing from package %s", b, e.pkg)
			}
		}
	}
	if !sort.SliceIsSorted(f.Benchmarks, func(i, j int) bool {
		a, b := f.Benchmarks[i], f.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	}) {
		return fmt.Errorf("benchmarks not sorted by (pkg, name)")
	}
	return nil
}

// benchLine matches one go test benchmark result line, e.g.
//
//	BenchmarkFoo-8   	 1000	  1234 ns/op	  56 B/op	  7 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.eE+]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// ParseBenchOutput extracts results from go test -bench output, attributing
// them to pkg.
func ParseBenchOutput(pkg string, out []byte) []Result {
	var rs []Result
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		var bop, allocs int64
		if m[4] != "" {
			bop, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			allocs, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rs = append(rs, Result{Name: m[1], Pkg: pkg, Iters: iters,
			NsOp: ns, BOp: bop, AllocsOp: allocs})
	}
	return rs
}

// cpuModel fingerprints the CPU; best-effort, "unknown" when unavailable.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return "unknown"
}

// runSuite executes the curated suite and assembles a snapshot.
func runSuite(benchtime string, verbose bool) (*File, error) {
	f := &File{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpuModel(),
		NumCPU:    runtime.NumCPU(),
		Benchtime: benchtime,
	}
	for _, e := range suite {
		pattern := "^(" + strings.Join(e.benches, "|") + ")$"
		args := []string{"test", "-run", "^$", "-bench", pattern,
			"-benchmem", "-benchtime", benchtime, e.pkg}
		if verbose {
			fmt.Fprintf(os.Stderr, "benchgate: go %s\n", strings.Join(args, " "))
		}
		cmd := exec.Command("go", args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go test -bench %s: %v\n%s", e.pkg, err, out)
		}
		rs := ParseBenchOutput(e.pkg, out)
		got := make(map[string]bool, len(rs))
		for _, r := range rs {
			got[r.Name] = true
		}
		for _, b := range e.benches {
			if !got[b] {
				return nil, fmt.Errorf("%s: benchmark %s produced no result\n%s", e.pkg, b, out)
			}
		}
		f.Benchmarks = append(f.Benchmarks, rs...)
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		a, b := f.Benchmarks[i], f.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return f, nil
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// summarize prints a per-benchmark comparison table to w-like stderr.
func summarize(old, new *File) {
	oldBy := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		oldBy[r.Pkg+"."+r.Name] = r
	}
	fmt.Fprintf(os.Stderr, "%-28s %14s %14s %8s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "allocs/op")
	for _, n := range new.Benchmarks {
		o, ok := oldBy[n.Pkg+"."+n.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%-28s %14s %14.1f %8s %12d\n",
				n.Name, "(new)", n.NsOp, "", n.AllocsOp)
			continue
		}
		fmt.Fprintf(os.Stderr, "%-28s %14.1f %14.1f %7.2fx %5d -> %d\n",
			n.Name, o.NsOp, n.NsOp, n.NsOp/o.NsOp, o.AllocsOp, n.AllocsOp)
	}
}

func main() {
	var (
		against   = flag.String("against", "", "baseline BENCH_*.json to gate against")
		out       = flag.String("out", "", "write the run's snapshot to this file")
		compare   = flag.String("compare", "", "compare this snapshot against -against without running")
		check     = flag.String("check", "", "validate a snapshot's schema and suite coverage, then exit")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime per benchmark")
		nsRatio   = flag.Float64("threshold", DefaultThresholds().NsRatio,
			"ns/op regression ratio ceiling (new/old); raise on noisy shared runners")
		allocAbs = flag.Int64("alloc-slack", DefaultThresholds().AllocsAbs,
			"allocs/op absolute slack before a regression is declared")
		bytesRatio = flag.Float64("bytes-threshold", DefaultThresholds().BytesRatio,
			"B/op regression ratio ceiling (new/old); raise when a change deliberately trades bytes for speed")
		verbose = flag.Bool("v", false, "log the go test invocations")
	)
	flag.Parse()

	if *check != "" {
		f, err := readFile(*check)
		if err == nil {
			err = Validate(f)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %s: schema ok, %d benchmarks, suite complete\n",
			*check, len(f.Benchmarks))
		return
	}

	th := DefaultThresholds()
	th.NsRatio = *nsRatio
	th.AllocsAbs = *allocAbs
	th.BytesRatio = *bytesRatio

	var cur *File
	var err error
	if *compare != "" {
		cur, err = readFile(*compare)
	} else {
		cur, err = runSuite(*benchtime, *verbose)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}

	if *out != "" {
		if err := writeFile(*out, cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchgate: wrote %s (%d benchmarks)\n", *out, len(cur.Benchmarks))
	}

	if *against == "" {
		return
	}
	base, err := readFile(*against)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(1)
	}
	summarize(base, cur)
	regs := Compare(base, cur, th)
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) against %s:\n", len(regs), *against)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: no regressions against %s\n", *against)
}
