// Command sentinel-bench regenerates the paper's evaluation: every table
// and figure of Sec. VII, against the simulated Optane and GPU platforms.
//
// Experiment cells (one simulation per model × policy × capacity point)
// fan out over a worker pool and share a plan cache, so a full sweep runs
// as wide as the machine allows while emitting tables byte-identical to a
// sequential run.
//
// Usage:
//
//	sentinel-bench                 # run everything, GOMAXPROCS-wide
//	sentinel-bench -exp fig7       # one experiment
//	sentinel-bench -workers 4      # bound the worker pool
//	sentinel-bench -seq            # sequential reference path (no pool, no cache)
//	sentinel-bench -quick          # trimmed sweeps
//	sentinel-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sentinel/internal/chaos"
	"sentinel/internal/experiment"
	"sentinel/internal/metrics"
	"sentinel/internal/tracecli"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or comma-separated list (see -list)")
		quick    = flag.Bool("quick", false, "trimmed sweeps for quick runs")
		steps    = flag.Int("steps", 5, "training steps per configuration")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		format   = flag.String("format", "text", "output format: text, csv, or json")
		workers  = flag.Int("workers", 0, "concurrent experiment cells (0 = GOMAXPROCS, 1 = sequential)")
		seq      = flag.Bool("seq", false, "sequential reference path: one worker, plan cache disabled")
		progress = flag.Bool("progress", stderrIsTerminal(), "live cell-completion progress on stderr")
	)
	tf := tracecli.Register()
	cf := chaos.RegisterFlags()
	flag.Parse()
	if err := cf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-bench:", err)
		os.Exit(1)
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiment.Options{Steps: *steps, Quick: *quick, Workers: *workers, Trace: tf.Bus(), Chaos: *cf}
	if *seq {
		// The reference path the golden determinism tests compare
		// against: strictly sequential and cache-free.
		opts.Workers = 1
		opts.NoCache = true
	} else {
		// One cache across the whole sweep: recurring cells (fast-only
		// references, repeated model/policy pairs) compute once.
		opts.Cache = experiment.NewCache()
	}
	var sp *metrics.SweepProgress
	if *progress {
		sp = metrics.NewSweepProgress(os.Stderr)
		opts.Progress = sp
	}
	sweepStart := time.Now()
	ids := experiment.DefaultIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		t, err := experiment.Run(strings.TrimSpace(id), opts)
		if sp != nil {
			sp.Break()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sentinel-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "sentinel-bench:", err)
				os.Exit(1)
			}
		case "json":
			if err := t.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "sentinel-bench:", err)
				os.Exit(1)
			}
		default:
			fmt.Println(t)
			fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if sp != nil {
		fmt.Fprintf(os.Stderr, "sweep: %s across %d experiments (wall-clock %v)\n",
			sp.Summary(), len(ids), time.Since(sweepStart).Round(time.Millisecond))
	}
	if err := tf.Write(); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-bench:", err)
		os.Exit(1)
	}
}

// stderrIsTerminal reports whether stderr is an interactive terminal; the
// live progress line defaults on only there (CI logs get one summary line).
func stderrIsTerminal() bool {
	st, err := os.Stderr.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}
