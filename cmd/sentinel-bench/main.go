// Command sentinel-bench regenerates the paper's evaluation: every table
// and figure of Sec. VII, against the simulated Optane and GPU platforms.
//
// Experiment cells (one simulation per model × policy × capacity point)
// fan out over a worker pool and share a plan cache, so a full sweep runs
// as wide as the machine allows while emitting tables byte-identical to a
// sequential run.
//
// Long sweeps are crash-safe: -journal records every completed cell in a
// durable on-disk log, -resume pre-warms the plan cache from it so a
// killed sweep restarts only its incomplete cells, -cell-timeout
// quarantines livelocked cells, and SIGINT/SIGTERM cancels cleanly —
// in-flight cells are abandoned, the journal and trace are flushed, and
// partial tables are emitted marked incomplete.
//
// Usage:
//
//	sentinel-bench                 # run everything, GOMAXPROCS-wide
//	sentinel-bench -exp fig7       # one experiment
//	sentinel-bench -workers 4      # bound the worker pool
//	sentinel-bench -seq            # sequential reference path (no pool, no cache)
//	sentinel-bench -quick          # trimmed sweeps
//	sentinel-bench -list           # list experiment ids
//	sentinel-bench -journal dir    # journal completed cells to dir/results.journal
//	sentinel-bench -journal dir -resume   # resume a killed sweep
//	sentinel-bench -cell-timeout 5m       # quarantine cells stuck past 5 minutes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sentinel/internal/chaos"
	"sentinel/internal/exec"
	"sentinel/internal/experiment"
	"sentinel/internal/metrics"
	"sentinel/internal/tracecli"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id or comma-separated list (see -list)")
		quick       = flag.Bool("quick", false, "trimmed sweeps for quick runs")
		steps       = flag.Int("steps", 5, "training steps per configuration")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		format      = flag.String("format", "text", "output format: text, csv, or json")
		workers     = flag.Int("workers", 0, "concurrent experiment cells (0 = GOMAXPROCS, 1 = sequential)")
		seq         = flag.Bool("seq", false, "sequential reference path: one worker, plan cache disabled")
		progress    = flag.Bool("progress", stderrIsTerminal(), "live cell-completion progress on stderr")
		journalDir  = flag.String("journal", "", "directory for the durable result journal (completed cells survive a crash)")
		resume      = flag.Bool("resume", false, "pre-warm the plan cache from the journal before sweeping (requires -journal)")
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell wall-clock deadline; cells past it are quarantined (0 = none)")
	)
	tf := tracecli.Register()
	cf := chaos.RegisterFlags()
	of := exec.RegisterOnlineFlags()
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sentinel-bench:", err)
		os.Exit(1)
	}
	if err := cf.Validate(); err != nil {
		fail(err)
	}
	if err := of.Validate(); err != nil {
		fail(err)
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	// SIGINT/SIGTERM cancel the sweep: cells not yet started are skipped,
	// in-flight cells are abandoned, and everything below the experiment
	// loop — journal flush, trace export, partial tables — still runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiment.Options{Steps: *steps, Quick: *quick, Workers: *workers,
		Trace: tf.Bus(), Chaos: *cf, Online: *of, Ctx: ctx, CellTimeout: *cellTimeout}
	if *seq {
		// The reference path the golden determinism tests compare
		// against: strictly sequential and cache-free.
		opts.Workers = 1
		opts.NoCache = true
		if *journalDir != "" {
			fail(fmt.Errorf("-journal needs the plan cache; it is incompatible with -seq"))
		}
	} else {
		// One cache across the whole sweep: recurring cells (fast-only
		// references, repeated model/policy pairs) compute once.
		opts.Cache = experiment.NewCache()
	}
	var sp *metrics.SweepProgress
	if *progress {
		sp = metrics.NewSweepProgress(os.Stderr)
		opts.Progress = sp
	}
	if *resume && *journalDir == "" {
		fail(fmt.Errorf("-resume requires -journal"))
	}
	if *journalDir != "" {
		j, err := experiment.OpenJournal(*journalDir)
		if err != nil {
			fail(err)
		}
		defer j.Close()
		opts.Journal = j
		if *resume {
			restored, skipped, err := j.Replay(opts.Cache)
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "journal: resumed %d cells from %s (%d corrupt or duplicate records skipped)\n",
				restored, j.Path(), skipped)
			if sp != nil {
				sp.AddResumed(restored)
			}
		}
	}

	//lint:allow determinism: CLI-only wall-clock for the sweep timing line on stderr; table bytes never depend on it
	sweepStart := time.Now()
	ids := experiment.DefaultIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	// Every requested experiment runs even if an earlier one fails; the
	// failures are reported together at the end and the exit code is
	// non-zero. Cancellation is the one early exit — and even then the
	// journal, trace, and summary still flush below.
	var failures []string
	ran := 0
	for _, id := range ids {
		if ctx.Err() != nil {
			break
		}
		id = strings.TrimSpace(id)
		//lint:allow determinism: CLI-only wall-clock for the per-experiment timing line; csv/json formats omit it
		start := time.Now()
		t, err := experiment.Run(id, opts)
		if sp != nil {
			sp.Break()
		}
		ran++
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", id, err))
			fmt.Fprintf(os.Stderr, "sentinel-bench: %s: %v\n", id, err)
			continue
		}
		switch *format {
		case "csv":
			if err := t.WriteCSV(os.Stdout); err != nil {
				fail(err)
			}
		case "json":
			if err := t.WriteJSON(os.Stdout); err != nil {
				fail(err)
			}
		default:
			fmt.Println(t)
			//lint:allow determinism: text-format timing line is explicitly wall-clock; the crash-resume CI job compares csv, which omits it
			fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if sp != nil {
		fmt.Fprintf(os.Stderr, "sweep: %s across %d experiments (wall-clock %v)\n",
			//lint:allow determinism: stderr sweep summary is explicitly labelled wall-clock
			sp.Summary(), ran, time.Since(sweepStart).Round(time.Millisecond))
	}
	if opts.Cache != nil && (*progress || opts.Journal != nil) {
		fmt.Fprintf(os.Stderr, "cache: %s\n", opts.Cache.Stats())
	}
	if opts.Journal != nil {
		if err := opts.Journal.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "sentinel-bench: journal sync:", err)
		}
		if err := opts.Journal.Err(); err != nil {
			failures = append(failures, fmt.Sprintf("journal: %v", err))
		}
		fmt.Fprintf(os.Stderr, "journal: %d cells appended to %s\n",
			opts.Journal.Appended(), opts.Journal.Path())
	}
	if err := tf.Write(); err != nil {
		fail(err)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "sweep interrupted after %d/%d experiments; completed cells are journaled%s\n",
			ran, len(ids), resumeHint(*journalDir))
		os.Exit(130)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "sentinel-bench: %d experiment(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
}

// resumeHint names the resume command when a journal is in play.
func resumeHint(dir string) string {
	if dir == "" {
		return " only if -journal was set"
	}
	return fmt.Sprintf("; rerun with -journal %s -resume", dir)
}

// stderrIsTerminal reports whether stderr is an interactive terminal; the
// live progress line defaults on only there (CI logs get one summary line).
func stderrIsTerminal() bool {
	st, err := os.Stderr.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}
