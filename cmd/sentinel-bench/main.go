// Command sentinel-bench regenerates the paper's evaluation: every table
// and figure of Sec. VII, against the simulated Optane and GPU platforms.
//
// Usage:
//
//	sentinel-bench                 # run everything
//	sentinel-bench -exp fig7       # one experiment
//	sentinel-bench -quick          # trimmed sweeps
//	sentinel-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sentinel/internal/experiment"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id or comma-separated list (see -list)")
		quick  = flag.Bool("quick", false, "trimmed sweeps for quick runs")
		steps  = flag.Int("steps", 5, "training steps per configuration")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		format = flag.String("format", "text", "output format: text, csv, or json")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiment.Options{Steps: *steps, Quick: *quick}
	ids := experiment.DefaultIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		t, err := experiment.Run(strings.TrimSpace(id), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sentinel-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "sentinel-bench:", err)
				os.Exit(1)
			}
		case "json":
			if err := t.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "sentinel-bench:", err)
				os.Exit(1)
			}
		default:
			fmt.Println(t)
			fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
