package main

import "testing"

// TestUnknownChecksFlagErrors: -checks with an unknown name must exit 2
// (usage error) before any analysis runs, never silently analyze
// nothing.
func TestUnknownChecksFlagErrors(t *testing.T) {
	if got := run([]string{"-checks", "bogus"}); got != 2 {
		t.Errorf("run(-checks bogus) = %d, want 2", got)
	}
}

// TestListExitsClean: -list is informational.
func TestListExitsClean(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
}
