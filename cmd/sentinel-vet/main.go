// sentinel-vet is the repo's domain-specific static analyzer: it
// enforces the simulator invariants the Go compiler cannot see —
// bit-determinism (no wall-clock time or unseeded randomness in
// simulation code, no order-sensitive map iteration), unit safety
// (bytes never silently become pages), the closed trace schema, sentinel
// error wrapping, and context conventions — plus the concurrency
// discipline of the serving/dist layer: mutex hygiene (locksafe),
// goroutine exit paths (goroleak), all-or-nothing atomic access
// (atomicmix), and declared state machines (statemach). The eleven
// checks run module-wide in one invocation: packages load in
// dependency order with cross-package type identity, so module-level
// analyzers can follow a types.Object across package boundaries. See
// docs/LINTING.md for the checks and the //lint:allow suppression
// syntax.
//
// Usage:
//
//	go run ./cmd/sentinel-vet [-checks determinism,maporder,...] [-json] [packages]
//
// Package patterns are directories relative to the module root; the
// default is ./... (the whole module, skipping testdata). Exit status:
// 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sentinel/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sentinel-vet", flag.ContinueOnError)
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *checks != "" {
		for _, n := range strings.Split(*checks, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sentinel-vet: %v\n", err)
		return 2
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sentinel-vet: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sentinel-vet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(loader, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sentinel-vet: %v\n", err)
		return 2
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "sentinel-vet: %v\n", err)
			return 2
		}
	} else {
		lint.WriteText(os.Stdout, diags)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sentinel-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
