// Benchmarks: one per paper table/figure, regenerating the experiment and
// reporting the simulated training-step times as custom metrics. Run with
//
//	go test -bench=. -benchmem
//
// These wrap the experiment harness so `go test -bench` reproduces the
// whole evaluation; cmd/sentinel-bench prints the tables themselves.
package sentinel_test

import (
	"testing"

	"sentinel"
)

// benchOpts keeps per-iteration cost bounded; the experiments themselves
// are deterministic, so one iteration is representative.
func benchOpts() sentinel.ExperimentOptions {
	return sentinel.ExperimentOptions{Steps: 5, Quick: true}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := sentinel.Experiment(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkCharacterization(b *testing.B) { benchExperiment(b, "characterization") }
func BenchmarkFig5(b *testing.B)             { benchExperiment(b, "fig5") }
func BenchmarkFig7(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)            { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)            { benchExperiment(b, "fig13") }
func BenchmarkTable1(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)           { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)           { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)           { benchExperiment(b, "table5") }

// BenchmarkSentinelStep measures the simulator's own cost of one managed
// training step (resnet32, 20% fast memory) — the engine's throughput, not
// the simulated time.
func BenchmarkSentinelStep(b *testing.B) {
	g, err := sentinel.BuildModel("resnet32", 128)
	if err != nil {
		b.Fatal(err)
	}
	machine := sentinel.OptaneHM().WithFastSize(g.PeakMemory() / 5)
	p, err := sentinel.NewPolicy("sentinel")
	if err != nil {
		b.Fatal(err)
	}
	rt, err := sentinel.NewRuntime(g, machine, p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.RunSteps(2); err != nil { // profile + first managed step
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.RunStep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfilingStep measures the cost of the tensor-level profiling
// mechanism itself.
func BenchmarkProfilingStep(b *testing.B) {
	g, err := sentinel.BuildModel("resnet32", 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sentinel.CollectProfile(g, sentinel.OptaneHM()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelBuild measures graph construction.
func BenchmarkModelBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sentinel.BuildModel("bert-large", 32); err != nil {
			b.Fatal(err)
		}
	}
}
